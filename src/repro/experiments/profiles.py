"""Execution profiles: full-scale paper runs vs fast bench runs.

Every experiment is parameterised by a :class:`Profile` so the same code
serves two purposes:

* ``PAPER`` -- windows and repetition counts sized for stable statistics
  at the paper's 512-host scale; used to fill EXPERIMENTS.md (minutes
  per figure in pure Python);
* ``BENCH`` -- reduced measurement windows, subsampled rate grids and
  fewer hotspot locations; preserves orderings and rough ratios while
  finishing in seconds, so ``pytest benchmarks/`` stays usable.

Nothing else differs: same topologies (full 512-host networks), same
routing tables, same timing constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..units import ns


@dataclass(frozen=True)
class Profile:
    """Knobs that trade statistical weight for wall-clock time."""

    name: str
    #: warm-up before measurement starts
    warmup_ps: int
    #: measurement window
    measure_ps: int
    #: keep every k-th point of a figure's rate grid (1 = all)
    rate_stride: int
    #: hotspot locations per table (paper: 10)
    hotspot_locations: int
    #: shorter windows used inside saturation searches
    sat_warmup_ps: int
    sat_measure_ps: int
    #: bisection refinement steps in saturation searches
    sat_refine_steps: int
    #: geometric ramp factor in saturation searches
    sat_growth: float

    def thin(self, rates: Sequence[float]) -> List[float]:
        """Subsample a rate grid, always keeping the last (highest)
        point so the curve still reaches saturation."""
        if self.rate_stride <= 1 or len(rates) <= 2:
            return list(rates)
        kept = list(rates[::self.rate_stride])
        if kept[-1] != rates[-1]:
            kept.append(rates[-1])
        return kept


PAPER = Profile(
    name="paper",
    warmup_ps=ns(150_000),
    measure_ps=ns(600_000),
    rate_stride=1,
    hotspot_locations=10,
    sat_warmup_ps=ns(80_000),
    sat_measure_ps=ns(250_000),
    sat_refine_steps=3,
    sat_growth=1.4,
)

BENCH = Profile(
    name="bench",
    warmup_ps=ns(80_000),
    measure_ps=ns(300_000),
    rate_stride=2,
    hotspot_locations=2,
    sat_warmup_ps=ns(50_000),
    sat_measure_ps=ns(150_000),
    sat_refine_steps=1,
    sat_growth=1.6,
)

#: tiny profile for unit/integration tests on scaled-down topologies
TEST = Profile(
    name="test",
    warmup_ps=ns(20_000),
    measure_ps=ns(60_000),
    rate_stride=4,
    hotspot_locations=1,
    sat_warmup_ps=ns(15_000),
    sat_measure_ps=ns(40_000),
    sat_refine_steps=1,
    sat_growth=1.8,
)

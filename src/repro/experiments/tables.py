"""Regeneration of Tables 1--3: hotspot saturation throughput.

Each table cell is the saturation throughput of one (routing, hotspot
location, hotspot load) configuration, found by
:func:`repro.metrics.saturation.find_saturation`.  Hotspot locations are
"chosen randomly" in the paper (10 per topology); we draw them
deterministically from a seed so the tables are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import SimConfig
from ..metrics.saturation import find_saturation
from .figures import ROUTINGS
from .profiles import Profile
from .runner import get_graph, run_simulation


@dataclass(frozen=True)
class HotspotTable:
    """One of the paper's hotspot tables."""

    table_id: str
    title: str
    topology: str
    #: hotspot loads studied (e.g. 0.05 and 0.10 for Table 1)
    fractions: Tuple[float, ...]
    #: hotspot host ids used
    locations: Tuple[int, ...]
    #: throughput[(fraction, location, label)] in flits/ns/switch
    throughput: Dict[Tuple[float, int, str], float]

    def averages(self) -> Dict[Tuple[float, str], float]:
        """Average row of the paper's tables: mean over locations."""
        out: Dict[Tuple[float, str], float] = {}
        for frac in self.fractions:
            for _, policy_label in _labels():
                vals = [self.throughput[(frac, loc, policy_label)]
                        for loc in self.locations]
                out[(frac, policy_label)] = sum(vals) / len(vals)
        return out

    def improvement_factors(self) -> Dict[Tuple[float, str], float]:
        """ITB throughput relative to UP/DOWN (the paper's 2.13x etc.)."""
        avg = self.averages()
        out: Dict[Tuple[float, str], float] = {}
        for frac in self.fractions:
            base = avg[(frac, "UP/DOWN")]
            for label in ("ITB-SP", "ITB-RR"):
                out[(frac, label)] = avg[(frac, label)] / base
        return out


def _labels() -> List[Tuple[Tuple[str, str], str]]:
    from ..routing.schemes import scheme_label
    return [((routing, policy), scheme_label(routing, policy))
            for routing, policy in ROUTINGS]


def pick_hotspots(topology: str, count: int, seed: int = 7,
                  topology_kwargs: Optional[dict] = None) -> List[int]:
    """Deterministically draw ``count`` distinct hotspot host ids."""
    g = get_graph(topology, topology_kwargs or {})
    rng = random.Random(f"{seed}:{topology}:{count}")
    return sorted(rng.sample(range(g.num_hosts), count))


def _cell_payload(topology: str, fraction: float, location: int,
                  routing: str, policy: str, profile: Profile,
                  start_rate: float, seed: int = 1) -> dict:
    """JSON-safe description of one table cell's saturation search."""
    return {
        "topology": topology,
        "fraction": fraction,
        "location": location,
        "routing": routing,
        "policy": policy,
        "start_rate": start_rate,
        "seed": seed,
        "sat_warmup_ps": profile.sat_warmup_ps,
        "sat_measure_ps": profile.sat_measure_ps,
        "growth": profile.sat_growth,
        "refine_steps": profile.sat_refine_steps,
    }


def saturation_cell_task(payload: dict) -> dict:
    """Worker function: one cell's full saturation search.

    A cell is internally sequential (the search is adaptive: each rate
    depends on the previous outcome) but cells are independent of each
    other, so the orchestrator dispatches one task per cell.  The
    result is JSON-safe so it can live in the result store.
    """
    def run_at(rate: float):
        cfg = SimConfig(
            topology=payload["topology"], routing=payload["routing"],
            policy=payload["policy"], traffic="hotspot",
            traffic_kwargs={"hotspot": payload["location"],
                            "fraction": payload["fraction"]},
            injection_rate=rate,
            warmup_ps=payload["sat_warmup_ps"],
            measure_ps=payload["sat_measure_ps"],
            seed=payload["seed"])
        return run_simulation(cfg)
    sat = find_saturation(run_at, payload["start_rate"],
                          growth=payload["growth"],
                          refine_steps=payload["refine_steps"])
    return {"throughput": sat.throughput,
            "last_stable_rate": sat.last_stable_rate,
            "first_saturated_rate": sat.first_saturated_rate,
            "converged": sat.converged,
            "runs": len(sat.runs)}


#: fn-path of :func:`saturation_cell_task` for the orchestrator
SATURATION_TASK_FN = "repro.experiments.tables:saturation_cell_task"


def _hotspot_table(table_id: str, title: str, topology: str,
                   fractions: Tuple[float, ...], profile: Profile,
                   start_rate: float, seed: int = 7,
                   executor=None) -> HotspotTable:
    """Fill one table, cell by cell.

    With an ``executor`` every (fraction, location, routing) cell runs
    as an independent saturation-search task -- fanned out across
    workers and checkpointed in the result store; the sequential path
    executes the exact same task function inline, so both produce
    bit-identical cells.
    """
    locations = tuple(pick_hotspots(topology, profile.hotspot_locations,
                                    seed))
    specs = [(frac, loc, label,
              _cell_payload(topology, frac, loc, routing, policy,
                            profile, start_rate))
             for frac in fractions
             for loc in locations
             for (routing, policy), label in _labels()]
    if executor is not None:
        results = executor.run_tasks(
            SATURATION_TASK_FN, [p for _, _, _, p in specs],
            labels=[f"{table_id} {label} hotspot={loc} @ {frac:.0%}"
                    for frac, loc, label, _ in specs])
    else:
        results = [saturation_cell_task(p) for _, _, _, p in specs]
    cells: Dict[Tuple[float, int, str], float] = {
        (frac, loc, label): r["throughput"]
        for (frac, loc, label, _), r in zip(specs, results)}
    return HotspotTable(table_id, title, topology, fractions, locations,
                        cells)


def table1(profile: Profile, executor=None) -> HotspotTable:
    """Table 1: 2-D torus, 5 % and 10 % hotspot traffic.

    Paper averages (flits/ns/switch): 5 % -> 0.0125 / 0.0267 / 0.0274;
    10 % -> 0.0123 / 0.0173 / 0.0183 for UP/DOWN / ITB-SP / ITB-RR.
    """
    return _hotspot_table("table1", "Hotspot throughput, 2-D torus",
                          "torus", (0.05, 0.10), profile,
                          start_rate=0.006, executor=executor)


def table2(profile: Profile, executor=None) -> HotspotTable:
    """Table 2: express torus, 3 % and 5 % hotspot traffic.

    Paper averages: 3 % -> 0.0483 / 0.0546 / 0.0542;
    5 % -> 0.0334 / 0.0363 / 0.0359.
    """
    return _hotspot_table("table2",
                          "Hotspot throughput, 2-D torus + express",
                          "torus-express", (0.03, 0.05), profile,
                          start_rate=0.015, executor=executor)


def table3(profile: Profile, executor=None) -> HotspotTable:
    """Table 3: CPLANT, 5 % hotspot traffic.

    Paper averages: 0.0340 / 0.0423 / 0.0451.
    """
    return _hotspot_table("table3", "Hotspot throughput, CPLANT",
                          "cplant", (0.05,), profile, start_rate=0.012, executor=executor)


#: paper-reported average rows, for EXPERIMENTS.md comparison
PAPER_TABLE_AVERAGES: Dict[str, Dict[Tuple[float, str], float]] = {
    "table1": {(0.05, "UP/DOWN"): 0.0125, (0.05, "ITB-SP"): 0.0267,
               (0.05, "ITB-RR"): 0.0274, (0.10, "UP/DOWN"): 0.0123,
               (0.10, "ITB-SP"): 0.0173, (0.10, "ITB-RR"): 0.0183},
    "table2": {(0.03, "UP/DOWN"): 0.0483, (0.03, "ITB-SP"): 0.0546,
               (0.03, "ITB-RR"): 0.0542, (0.05, "UP/DOWN"): 0.0334,
               (0.05, "ITB-SP"): 0.0363, (0.05, "ITB-RR"): 0.0359},
    "table3": {(0.05, "UP/DOWN"): 0.0340, (0.05, "ITB-SP"): 0.0423,
               (0.05, "ITB-RR"): 0.0451},
}

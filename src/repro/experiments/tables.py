"""Regeneration of Tables 1--3: hotspot saturation throughput.

Each table cell is the saturation throughput of one (routing, hotspot
location, hotspot load) configuration, found by
:func:`repro.metrics.saturation.find_saturation`.  Hotspot locations are
"chosen randomly" in the paper (10 per topology); we draw them
deterministically from a seed so the tables are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import SimConfig
from ..metrics.saturation import SaturationResult, find_saturation
from .figures import ROUTINGS
from .profiles import Profile
from .runner import get_graph, run_simulation


@dataclass(frozen=True)
class HotspotTable:
    """One of the paper's hotspot tables."""

    table_id: str
    title: str
    topology: str
    #: hotspot loads studied (e.g. 0.05 and 0.10 for Table 1)
    fractions: Tuple[float, ...]
    #: hotspot host ids used
    locations: Tuple[int, ...]
    #: throughput[(fraction, location, label)] in flits/ns/switch
    throughput: Dict[Tuple[float, int, str], float]

    def averages(self) -> Dict[Tuple[float, str], float]:
        """Average row of the paper's tables: mean over locations."""
        out: Dict[Tuple[float, str], float] = {}
        for frac in self.fractions:
            for _, policy_label in _labels():
                vals = [self.throughput[(frac, loc, policy_label)]
                        for loc in self.locations]
                out[(frac, policy_label)] = sum(vals) / len(vals)
        return out

    def improvement_factors(self) -> Dict[Tuple[float, str], float]:
        """ITB throughput relative to UP/DOWN (the paper's 2.13x etc.)."""
        avg = self.averages()
        out: Dict[Tuple[float, str], float] = {}
        for frac in self.fractions:
            base = avg[(frac, "UP/DOWN")]
            for label in ("ITB-SP", "ITB-RR"):
                out[(frac, label)] = avg[(frac, label)] / base
        return out


def _labels() -> List[Tuple[Tuple[str, str], str]]:
    names = {("updown", "sp"): "UP/DOWN", ("itb", "sp"): "ITB-SP",
             ("itb", "rr"): "ITB-RR"}
    return [(rp, names[rp]) for rp in ROUTINGS]


def pick_hotspots(topology: str, count: int, seed: int = 7,
                  topology_kwargs: Optional[dict] = None) -> List[int]:
    """Deterministically draw ``count`` distinct hotspot host ids."""
    g = get_graph(topology, topology_kwargs or {})
    rng = random.Random(f"{seed}:{topology}:{count}")
    return sorted(rng.sample(range(g.num_hosts), count))


def _cell_throughput(topology: str, fraction: float, location: int,
                     routing: str, policy: str, profile: Profile,
                     start_rate: float, seed: int = 1) -> SaturationResult:
    def run_at(rate: float):
        cfg = SimConfig(
            topology=topology, routing=routing, policy=policy,
            traffic="hotspot",
            traffic_kwargs={"hotspot": location, "fraction": fraction},
            injection_rate=rate,
            warmup_ps=profile.sat_warmup_ps,
            measure_ps=profile.sat_measure_ps,
            seed=seed)
        return run_simulation(cfg)
    return find_saturation(run_at, start_rate, growth=profile.sat_growth,
                           refine_steps=profile.sat_refine_steps)


def _hotspot_table(table_id: str, title: str, topology: str,
                   fractions: Tuple[float, ...], profile: Profile,
                   start_rate: float, seed: int = 7) -> HotspotTable:
    locations = tuple(pick_hotspots(topology, profile.hotspot_locations,
                                    seed))
    cells: Dict[Tuple[float, int, str], float] = {}
    for frac in fractions:
        for loc in locations:
            for (routing, policy), label in _labels():
                sat = _cell_throughput(topology, frac, loc, routing,
                                       policy, profile, start_rate)
                cells[(frac, loc, label)] = sat.throughput
    return HotspotTable(table_id, title, topology, fractions, locations,
                        cells)


def table1(profile: Profile) -> HotspotTable:
    """Table 1: 2-D torus, 5 % and 10 % hotspot traffic.

    Paper averages (flits/ns/switch): 5 % -> 0.0125 / 0.0267 / 0.0274;
    10 % -> 0.0123 / 0.0173 / 0.0183 for UP/DOWN / ITB-SP / ITB-RR.
    """
    return _hotspot_table("table1", "Hotspot throughput, 2-D torus",
                          "torus", (0.05, 0.10), profile,
                          start_rate=0.006)


def table2(profile: Profile) -> HotspotTable:
    """Table 2: express torus, 3 % and 5 % hotspot traffic.

    Paper averages: 3 % -> 0.0483 / 0.0546 / 0.0542;
    5 % -> 0.0334 / 0.0363 / 0.0359.
    """
    return _hotspot_table("table2",
                          "Hotspot throughput, 2-D torus + express",
                          "torus-express", (0.03, 0.05), profile,
                          start_rate=0.015)


def table3(profile: Profile) -> HotspotTable:
    """Table 3: CPLANT, 5 % hotspot traffic.

    Paper averages: 0.0340 / 0.0423 / 0.0451.
    """
    return _hotspot_table("table3", "Hotspot throughput, CPLANT",
                          "cplant", (0.05,), profile, start_rate=0.012)


#: paper-reported average rows, for EXPERIMENTS.md comparison
PAPER_TABLE_AVERAGES: Dict[str, Dict[Tuple[float, str], float]] = {
    "table1": {(0.05, "UP/DOWN"): 0.0125, (0.05, "ITB-SP"): 0.0267,
               (0.05, "ITB-RR"): 0.0274, (0.10, "UP/DOWN"): 0.0123,
               (0.10, "ITB-SP"): 0.0173, (0.10, "ITB-RR"): 0.0183},
    "table2": {(0.03, "UP/DOWN"): 0.0483, (0.03, "ITB-SP"): 0.0546,
               (0.03, "ITB-RR"): 0.0542, (0.05, "UP/DOWN"): 0.0334,
               (0.05, "ITB-SP"): 0.0363, (0.05, "ITB-RR"): 0.0359},
    "table3": {(0.05, "UP/DOWN"): 0.0340, (0.05, "ITB-SP"): 0.0423,
               (0.05, "ITB-RR"): 0.0451},
}

"""Statistically grounded comparison of two configurations.

``compare_configs`` runs both configurations over several independent
seeds, forms 95 % t-intervals over the per-seed average latencies and
accepted-traffic values, and declares a winner only when the intervals
separate.  This is what "ITB-SP achieves slightly lower latency than
ITB-RR" should mean quantitatively -- the harness uses it to avoid
over-reading single-run noise, and `examples/` demonstrates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..config import SimConfig
from ..metrics.stats import ConfidenceInterval, replication_interval
from .runner import run_simulation


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of an A/B comparison across seeds."""

    label_a: str
    label_b: str
    latency_a: ConfidenceInterval
    latency_b: ConfidenceInterval
    accepted_a: ConfidenceInterval
    accepted_b: ConfidenceInterval
    seeds: Tuple[int, ...]

    @property
    def latency_verdict(self) -> str:
        """``"a"``, ``"b"`` (lower latency wins) or ``"tie"`` when the
        intervals overlap."""
        if self.latency_a.overlaps(self.latency_b):
            return "tie"
        return "a" if self.latency_a.mean < self.latency_b.mean else "b"

    @property
    def throughput_verdict(self) -> str:
        """``"a"``, ``"b"`` (higher accepted traffic wins) or ``"tie"``."""
        if self.accepted_a.overlaps(self.accepted_b):
            return "tie"
        return "a" if self.accepted_a.mean > self.accepted_b.mean else "b"

    def render(self) -> str:
        def fmt(ci: ConfidenceInterval, unit: str) -> str:
            return f"{ci.mean:10.1f} +- {ci.half_width:7.1f} {unit}"

        lines = [
            f"{self.label_a} vs {self.label_b} "
            f"({len(self.seeds)} seeds, 95% t-intervals)",
            f"  latency : {self.label_a:10s} {fmt(self.latency_a, 'ns')}",
            f"            {self.label_b:10s} {fmt(self.latency_b, 'ns')}"
            f"   -> {self._describe(self.latency_verdict, 'lower latency')}",
            f"  accepted: {self.label_a:10s} "
            f"{self.accepted_a.mean:8.4f} +- {self.accepted_a.half_width:6.4f}",
            f"            {self.label_b:10s} "
            f"{self.accepted_b.mean:8.4f} +- {self.accepted_b.half_width:6.4f}"
            f"   -> {self._describe(self.throughput_verdict, 'higher throughput')}",
        ]
        return "\n".join(lines)

    def _describe(self, verdict: str, metric: str) -> str:
        if verdict == "tie":
            return f"indistinguishable {metric}"
        winner = self.label_a if verdict == "a" else self.label_b
        return f"{winner} has {metric}"


def compare_configs(cfg_a: SimConfig, cfg_b: SimConfig,
                    seeds: Sequence[int] = (1, 2, 3, 4, 5),
                    **runner_kwargs) -> ComparisonResult:
    """Run both configurations over ``seeds`` and compare.

    Raises :class:`ValueError` when any run delivers no messages (the
    measurement window is then too short to compare anything).
    """
    if len(seeds) < 2:
        raise ValueError("need at least two seeds")

    def collect(cfg: SimConfig) -> Tuple[List[float], List[float]]:
        lats: List[float] = []
        accs: List[float] = []
        for seed in seeds:
            s = run_simulation(cfg.with_overrides(seed=seed),
                               **runner_kwargs)
            if s.avg_latency_ns is None:
                raise ValueError(
                    f"{cfg.label()} seed {seed}: nothing delivered; "
                    f"lengthen the measurement window")
            lats.append(s.avg_latency_ns)
            accs.append(s.accepted_flits_ns_switch)
        return lats, accs

    lat_a, acc_a = collect(cfg_a)
    lat_b, acc_b = collect(cfg_b)
    return ComparisonResult(
        cfg_a.label(), cfg_b.label(),
        replication_interval(lat_a), replication_interval(lat_b),
        replication_interval(acc_a), replication_interval(acc_b),
        tuple(seeds))

"""Latency-vs-traffic sweeps: the raw material of the paper's figures.

A sweep runs one configuration at a list of offered rates and collects
the ``(accepted traffic, average latency)`` series that the paper plots.
Points past saturation are kept (flagged) -- the paper's curves also
bend vertical there -- but their latency is window-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import SimConfig
from ..metrics.summary import RunSummary
from .runner import run_simulation


@dataclass(frozen=True)
class SweepResult:
    """One curve: a configuration swept over offered rates."""

    label: str
    runs: List[RunSummary]

    @property
    def rates(self) -> List[float]:
        return [r.offered_flits_ns_switch for r in self.runs]

    @property
    def accepted(self) -> List[float]:
        return [r.accepted_flits_ns_switch for r in self.runs]

    @property
    def latencies_ns(self) -> List[Optional[float]]:
        return [r.avg_latency_ns for r in self.runs]

    def throughput(self) -> float:
        """Saturation throughput: the knee of the curve.

        The highest accepted traffic among *non-saturated* points --
        i.e. the load the network sustains while still tracking offered
        traffic.  Past the knee, accepted traffic can keep creeping up
        (flows that avoid the congested region still get through), but
        latency is unbounded there, so the paper reads the knee.  When
        every point saturated (the sweep started too high) the overall
        maximum is returned as a fallback.
        """
        stable = [r.accepted_flits_ns_switch for r in self.runs
                  if not r.saturated]
        return max(stable) if stable else max(self.accepted)

    def saturation_rate(self) -> Optional[float]:
        """Lowest offered rate at which the run saturated (None if the
        sweep never reached saturation)."""
        for r in self.runs:
            if r.saturated:
                return r.offered_flits_ns_switch
        return None


def sweep_rates(base: SimConfig, rates: Sequence[float],
                stop_after_saturation: int = 1,
                executor=None,
                **runner_kwargs) -> SweepResult:
    """Run ``base`` at each rate (ascending).

    ``stop_after_saturation`` limits how many saturated points are
    simulated beyond the first (saturated runs are the slowest: the
    network is full of contending packets), preserving the curve's
    vertical bend without paying for points that carry no information.

    ``executor`` (a :class:`repro.orchestrator.Executor`) routes the
    points through the parallel orchestrator and its result store.  To
    preserve the early-stop semantics in parallel mode, rate points are
    dispatched in **ascending waves** of the executor's worker count:
    the kept prefix of the curve is identical to the sequential path's,
    a wave's surplus post-saturation points are merely simulated (and
    cached) without being reported.  Callers passing live ``graph=`` or
    ``tables=`` objects fall back to sequential execution -- those
    cannot cross the process/disk boundary.
    """
    ordered = sorted(rates)
    if executor is not None and all(
            runner_kwargs.get(k) is None for k in ("graph", "tables")):
        return _sweep_rates_executor(base, ordered, stop_after_saturation,
                                     executor, runner_kwargs)
    sat_seen = 0
    runs: List[RunSummary] = []
    for rate in ordered:
        cfg = base.with_overrides(injection_rate=rate)
        summary = run_simulation(cfg, **runner_kwargs)
        runs.append(summary)
        if summary.saturated:
            sat_seen += 1
            if sat_seen > stop_after_saturation:
                break
    return SweepResult(base.label(), runs)


def _sweep_rates_executor(base: SimConfig, ordered: Sequence[float],
                          stop_after_saturation: int, executor,
                          runner_kwargs: dict) -> SweepResult:
    """Wave-parallel sweep with sequential-identical early stop."""
    wave = max(1, executor.workers)
    sat_seen = 0
    runs: List[RunSummary] = []
    for start in range(0, len(ordered), wave):
        batch = ordered[start:start + wave]
        configs = [base.with_overrides(injection_rate=r) for r in batch]
        summaries = executor.run_configs(configs, **runner_kwargs)
        for summary in summaries:
            runs.append(summary)
            if summary.saturated:
                sat_seen += 1
                if sat_seen > stop_after_saturation:
                    return SweepResult(base.label(), runs)
    return SweepResult(base.label(), runs)

"""Experiment harness: one entry point per paper table/figure.

* :func:`~repro.experiments.runner.run_simulation` executes one
  :class:`~repro.config.SimConfig` and returns a
  :class:`~repro.metrics.summary.RunSummary`;
* :mod:`sweep` produces the latency-vs-accepted-traffic curves of the
  figures;
* :mod:`figures` / :mod:`tables` regenerate each paper artefact;
* :mod:`profiles` defines the *bench* (fast) and *paper* (full-scale)
  parameterisations;
* :mod:`report` renders ASCII tables and series;
* :mod:`registry` maps experiment ids (``fig7a`` ... ``table3``) to
  callables.
"""

from __future__ import annotations

from .runner import run_simulation, clear_caches
from .sweep import sweep_rates, SweepResult
from .profiles import Profile, BENCH, PAPER
from .registry import EXPERIMENTS, run_experiment

__all__ = [
    "run_simulation",
    "clear_caches",
    "sweep_rates",
    "SweepResult",
    "Profile",
    "BENCH",
    "PAPER",
    "EXPERIMENTS",
    "run_experiment",
]

"""(r, b)-adversarial stability study (extension experiment).

Adversarial queueing theory asks whether a routing/scheduling
discipline keeps queues bounded under the *worst* injection pattern
that still respects a long-run rate: an (r, b)-adversary may inject,
into any window [s, t], at most ``r (t - s) + b`` messages per host
(arXiv cs/0203030 studies exactly this model for source-routed
networks).  The :mod:`repro.traffic` registry's ``adversarial``
arrival process realises the worst case allowed by that envelope --
phase-aligned volleys of ``b`` messages at long-run rate ``r``.

The experiment, per routing scheme:

1. find the saturation rate under the paper's constant-rate load model
   (:func:`~repro.metrics.saturation.find_saturation`);
2. re-run at fixed fractions of the last stable rate with the
   adversarial arrival process, windows stretched to cover several
   full adversary cycles (one cycle = ``b`` mean intervals -- a window
   shorter than that only ever sees the opening volley's transient);
3. report the backlog growth over the measurement window and the
   stability verdict: **stable** iff the backlog stayed bounded
   (:attr:`~repro.metrics.summary.RunSummary.saturated` is False).

A scheme is *adversary-stable* when every operating point below its
saturation rate keeps a bounded backlog even under the coordinated
volleys; losing stability at a fraction well below 1.0 means the
scheme's headroom figure is optimistic for bursty tenants.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import SimConfig
from ..metrics.saturation import find_saturation
from ..routing.schemes import scheme_label
from ..traffic.base import per_host_interval_ps
from .profiles import Profile
from .runner import get_graph, run_simulation

#: fn-path of :func:`adversary_cell_task` for the orchestrator
ADVERSARY_TASK_FN = "repro.experiments.adversary:adversary_cell_task"

#: fractions of the last stable (constant-arrivals) rate probed under
#: the adversary
DEFAULT_FRACTIONS = (0.3, 0.6, 0.9)

#: adversary cycles the measurement window must cover (fewer measures
#: only the opening-volley transient, not the steady state)
MEASURE_CYCLES = 4
WARMUP_CYCLES = 2


@dataclass(frozen=True)
class StabilityCell:
    """One (scheme, load fraction) probe under the adversary."""

    routing: str
    policy: str
    label: str
    #: fraction of the scheme's last stable constant-arrivals rate
    fraction: float
    #: offered load of this probe, flits/ns/switch
    rate: float
    accepted: float
    avg_latency_ns: Optional[float]
    #: messages gained by the backlog over the measurement window
    backlog_growth: int
    messages_generated: int
    #: bounded-backlog verdict: the run did not saturate
    stable: bool


@dataclass(frozen=True)
class StabilityReport:
    """Full adversarial-stability study for one topology."""

    topology: str
    topology_label: str
    seed: int
    #: adversary volley size b (messages banked per cycle)
    burst: int
    fractions: Tuple[float, ...]
    #: per scheme label: saturation throughput under constant arrivals
    saturation: Dict[str, float]
    #: per scheme label: last stable constant-arrivals rate
    stable_rate: Dict[str, float]
    cells: Tuple[StabilityCell, ...]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe artifact."""
        return {
            "topology": self.topology,
            "topology_label": self.topology_label,
            "seed": self.seed,
            "burst": self.burst,
            "fractions": list(self.fractions),
            "saturation": dict(self.saturation),
            "stable_rate": dict(self.stable_rate),
            "cells": [asdict(c) for c in self.cells],
        }


def _scheme_payload(routing: str, policy: str, topology: str,
                    topology_kwargs: Dict[str, Any], profile: Profile,
                    seed: int, burst: int, start_rate: float,
                    fractions: Sequence[float]) -> dict:
    """JSON-safe description of one scheme's search + probes."""
    return {
        "topology": topology,
        "topology_kwargs": dict(topology_kwargs),
        "routing": routing,
        "policy": policy,
        "seed": seed,
        "burst": burst,
        "start_rate": start_rate,
        "fractions": list(fractions),
        "sat_warmup_ps": profile.sat_warmup_ps,
        "sat_measure_ps": profile.sat_measure_ps,
        "growth": profile.sat_growth,
        "refine_steps": profile.sat_refine_steps,
    }


def adversary_cell_task(payload: dict) -> dict:
    """Worker function: saturation search + adversarial probes.

    The probe windows scale with the adversary cycle (``burst`` mean
    inter-message intervals at the probe rate): the cycle grows as the
    rate shrinks, so fixed profile windows would cover less and less
    of the steady state at the low-load fractions.
    """
    topo = payload["topology"]
    topo_kwargs = payload["topology_kwargs"]
    burst = payload["burst"]
    g = get_graph(topo, topo_kwargs)

    def cfg_at(rate: float, **overrides: Any) -> SimConfig:
        return SimConfig(
            topology=topo, topology_kwargs=topo_kwargs,
            routing=payload["routing"], policy=payload["policy"],
            injection_rate=rate,
            warmup_ps=payload["sat_warmup_ps"],
            measure_ps=payload["sat_measure_ps"],
            seed=payload["seed"]).with_overrides(**overrides)

    sat = find_saturation(
        lambda rate: run_simulation(cfg_at(rate)),
        payload["start_rate"], growth=payload["growth"],
        refine_steps=payload["refine_steps"])

    probes = []
    if sat.last_stable_rate == sat.last_stable_rate:  # not NaN
        for fraction in payload["fractions"]:
            rate = fraction * sat.last_stable_rate
            cycle_ps = burst * per_host_interval_ps(rate, 512, g)
            s = run_simulation(cfg_at(
                rate, arrival="adversarial",
                arrival_kwargs={"burst": burst},
                warmup_ps=max(payload["sat_warmup_ps"],
                              WARMUP_CYCLES * cycle_ps),
                measure_ps=max(payload["sat_measure_ps"],
                               MEASURE_CYCLES * cycle_ps)))
            probes.append({
                "fraction": fraction,
                "rate": rate,
                "accepted": s.accepted_flits_ns_switch,
                "avg_latency_ns": s.avg_latency_ns,
                "backlog_growth": s.backlog_growth,
                "messages_generated": s.messages_generated,
                "stable": not s.saturated,
            })

    return {
        "throughput": sat.throughput,
        "last_stable_rate": sat.last_stable_rate,
        "converged": sat.converged,
        "probes": probes,
    }


def run_adversary_study(schemes: Sequence[Tuple[str, str]],
                        topology: str,
                        topology_kwargs: Dict[str, Any],
                        topology_label: str,
                        profile: Profile,
                        seed: int = 1,
                        burst: int = 8,
                        start_rate: float = 0.005,
                        fractions: Sequence[float] = DEFAULT_FRACTIONS,
                        executor=None) -> StabilityReport:
    """Run the study for every ``(routing, policy)`` pair given."""
    payloads = [_scheme_payload(r, p, topology, topology_kwargs, profile,
                                seed, burst, start_rate, fractions)
                for r, p in schemes]
    if executor is not None:
        results = executor.run_tasks(
            ADVERSARY_TASK_FN, payloads,
            labels=[f"adversary {scheme_label(r, p)} {topology_label}"
                    for r, p in schemes])
    else:
        results = [adversary_cell_task(p) for p in payloads]

    saturation: Dict[str, float] = {}
    stable_rate: Dict[str, float] = {}
    cells: List[StabilityCell] = []
    for (routing, policy), res in zip(schemes, results):
        label = scheme_label(routing, policy)
        saturation[label] = res["throughput"]
        stable_rate[label] = res["last_stable_rate"]
        for probe in res["probes"]:
            cells.append(StabilityCell(
                routing=routing, policy=policy, label=label,
                fraction=probe["fraction"], rate=probe["rate"],
                accepted=probe["accepted"],
                avg_latency_ns=probe["avg_latency_ns"],
                backlog_growth=probe["backlog_growth"],
                messages_generated=probe["messages_generated"],
                stable=probe["stable"]))
    return StabilityReport(topology, topology_label, seed, burst,
                           tuple(fractions), saturation, stable_rate,
                           tuple(cells))


def render_stability_table(report: StabilityReport) -> str:
    """ASCII table: per scheme, one row per probed load fraction."""
    out = [f"(r, b)-adversarial stability, {report.topology_label} "
           f"(volley b={report.burst}, seed {report.seed})",
           "stable = backlog bounded over the measurement window "
           "(several full adversary cycles)"]
    name_w = max([len(label) for label in report.saturation] + [6]) + 2
    out.append(f"{'scheme':<{name_w}}{'sat thr':>9} {'frac':>6} "
               f"{'offered':>9} {'accepted':>9} {'lat(ns)':>9} "
               f"{'backlog':>8}  verdict")
    for label in report.saturation:
        first = True
        for c in report.cells:
            if c.label != label:
                continue
            name = label if first else ""
            thr = f"{report.saturation[label]:9.4f}" if first else " " * 9
            first = False
            lat = (f"{c.avg_latency_ns:9.0f}"
                   if c.avg_latency_ns is not None else "      n/a")
            out.append(
                f"{name:<{name_w}}{thr} {c.fraction:6.2f} "
                f"{c.rate:9.4f} {c.accepted:9.4f} {lat} "
                f"{c.backlog_growth:8d}  "
                f"{'stable' if c.stable else 'UNSTABLE'}")
        if first:
            out.append(f"{label:<{name_w}}"
                       f"{report.saturation[label]:9.4f}  "
                       "(no stable constant-rate point found)")
    return "\n".join(out)


def torus_adversary(profile: Profile, executor=None) -> StabilityReport:
    """Registry entry: up*/down* vs ITB on the scaled-down 4x4 torus.

    The paper's two schemes, each with its natural policy, probed at
    {0.3, 0.6, 0.9} of their own last stable rate under a b=8
    adversary.  Below saturation both should hold a bounded backlog;
    the fraction at which a scheme first goes unstable is its real
    headroom under worst-case bursty injection.
    """
    return run_adversary_study(
        (("updown", "rr"), ("itb", "rr")),
        "torus", {"rows": 4, "cols": 4, "hosts_per_switch": 2},
        "torus 4x4", profile, seed=1, burst=8, executor=executor)

"""Single-run executor: config in, summary out.

``run_simulation`` builds (or reuses) the topology and routing tables,
instantiates the configured engine through the
:mod:`repro.sim.engines` registry, wires traffic and collectors, runs
warm-up + measurement, and returns a :class:`RunSummary`.  All engine
dispatch happens inside :mod:`repro.sim`; link and ITB statistics come
from the uniform :class:`~repro.sim.base.NetworkModel` accessors, so
every registered engine yields real (never fabricated) numbers or a
clear :class:`~repro.sim.base.UnsupportedCapability` error.

Topology and routing-table construction dominate short runs (the
simple_routes balancing alone walks thousands of pair candidates), so
both are memoised per (topology, scheme, root, cap) -- a latency sweep
then pays the cost once.  Caches are explicit and clearable for tests.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from ..canon import freeze
from ..config import SimConfig
from ..metrics.collector import LatencyCollector
from ..metrics.linkstats import collect_link_stats
from ..metrics.recovery import RecoveryTracker
from ..metrics.summary import RunSummary
from ..perf import PerfRecorder, now as _now, profile_to
from ..routing.policies import make_policy
from ..routing.table import RoutingTables, compute_tables
from ..sim.base import (CAP_BATCH_DELIVERY, CAP_BATCH_INJECT,
                        CAP_ITB_POOL, NO_ITB_STATS)
from ..sim.engine import Simulator
from ..sim.engines import make_network
from ..sim.faults import FaultPlan
from ..sim.invariants import audit as audit_invariants
from ..sim.reliable import (ReconfigParams, ReconfigurationManager,
                            ReliableParams, ReliableTransport)
from ..topology import build as build_topology
from ..topology.graph import NetworkGraph
from ..topology.validate import check_topology
from ..traffic.base import TrafficProcess, per_host_interval_ps
from ..traffic.registry import make_workload

_GRAPH_CACHE: Dict[Tuple, NetworkGraph] = {}
_TABLE_CACHE: Dict[Tuple, RoutingTables] = {}
#: memoised pregenerated schedules (batch-inject path): a schedule is a
#: pure function of (topology, workload spec, interval, seed, horizon),
#: so paired runs sharing a seed -- policy/scheme comparisons on
#: identical traffic, benchmark repeats -- reuse it instead of
#: re-drawing ~2 RNG streams per host.  Entries are read-only
#: (engines copy what they need); capped FIFO to bound memory.
_SCHEDULE_CACHE: Dict[Tuple, list] = {}
_SCHEDULE_CACHE_MAX = 8


def _freeze_kwargs(kwargs: Mapping[str, Any]) -> Tuple:
    """Hashable cache key for (possibly nested) keyword arguments.

    Delegates to :func:`repro.canon.freeze` -- the same canonicalisation
    the orchestrator's result store hashes -- so nested dict/list values
    (e.g. a ``topology_kwargs`` carrying a per-dimension size dict) key
    the memo caches instead of raising ``unhashable type``.
    """
    return freeze(kwargs)


def get_graph(topology: str, topology_kwargs: Mapping[str, Any]
              ) -> NetworkGraph:
    """Build (or fetch the cached) topology and validate it once."""
    key = (topology, _freeze_kwargs(topology_kwargs))
    g = _GRAPH_CACHE.get(key)
    if g is None:
        g = build_topology(topology, **dict(topology_kwargs))
        check_topology(g)
        _GRAPH_CACHE[key] = g
    return g


def get_tables(g: NetworkGraph, topology_key: Tuple, scheme: str,
               root: int = 0, max_routes_per_pair: int = 10,
               sort_by_itbs: bool = False) -> RoutingTables:
    """Compute (or fetch the cached) routing tables for a cached graph."""
    key = (topology_key, scheme, root, max_routes_per_pair, sort_by_itbs)
    t = _TABLE_CACHE.get(key)
    if t is None:
        t = compute_tables(g, scheme, root, max_routes_per_pair,
                           sort_by_itbs)
        _TABLE_CACHE[key] = t
    return t


def clear_caches() -> None:
    """Drop memoised graphs, tables and schedules (tests use this)."""
    _GRAPH_CACHE.clear()
    _TABLE_CACHE.clear()
    _SCHEDULE_CACHE.clear()


def run_simulation(config: SimConfig, collect_links: bool = False,
                   root: int = 0, sort_by_itbs: bool = False,
                   watchdog_ps: Optional[int] = None,
                   tables: Optional[RoutingTables] = None,
                   graph: Optional[NetworkGraph] = None,
                   perf: Optional[PerfRecorder] = None,
                   profile_path: Optional[str] = None,
                   fault_plan: Optional[Any] = None,
                   reliable: Optional[Any] = None,
                   reconfig: Optional[Any] = None,
                   recovery_threshold: float = 0.9,
                   collect_percentiles: bool = False,
                   check_invariants: bool = False) -> RunSummary:
    """Execute one simulation run described by ``config``.

    ``collect_links`` additionally gathers the per-link utilisation
    snapshot (Figures 8/9/11).  ``collect_percentiles`` keeps every
    per-message latency sample so the summary carries
    ``p99_latency_ns`` (costs one list append per delivery; off by
    default to keep long runs lean).  ``tables`` lets callers inject
    custom routing tables (the deadlock-demonstration tests route
    *without* ITBs on purpose); by default they are derived from
    ``config.routing``.  ``graph`` overrides the topology lookup with a
    pre-built network (failure studies run mutated copies that have no
    registry name); such graphs bypass the table cache.

    ``fault_plan`` (a :class:`repro.sim.FaultPlan` or its ``to_dict``
    form) schedules mid-run link deaths; requires an engine declaring
    ``CAP_DYNAMIC_FAULTS``.  Dropped messages appear in
    ``messages_dropped`` and never count as delivered.

    ``reliable`` (``True``, a :class:`repro.sim.ReliableParams` or its
    ``to_dict`` form) fronts the engine with the end-to-end
    retransmission protocol: message counts in the summary become
    *message*-level (unique deliveries; retransmitted attempts show up
    in ``retransmissions`` / ``duplicate_deliveries``).  ``reconfig``
    (``True``, a :class:`repro.sim.ReconfigParams` or a dict) installs
    the online reconfiguration manager that recomputes and hot-swaps
    the routing tables after each fault; with a fault plan present the
    summary additionally reports ``time_to_recover_ns``, the first
    post-fault window whose accepted traffic is back within
    ``recovery_threshold`` of the pre-fault mean.

    ``check_invariants`` audits the runtime invariant suite
    (:func:`repro.sim.invariants.audit`: message conservation, channel
    occupancy bounds, ITB byte-accounting) at the warm-up and
    measurement boundaries and raises
    :class:`~repro.sim.invariants.InvariantViolation` on the first
    failure; requires an engine declaring ``CAP_INVARIANTS``.

    ``perf`` (a :class:`repro.perf.PerfRecorder`) receives wall-clock
    and events/sec figures for the run; ``profile_path`` additionally
    dumps a :mod:`cProfile` trace of the whole call to that file.
    Neither affects the simulation itself or its summary.
    """
    with profile_to(profile_path):
        return _run_simulation(config, collect_links, root, sort_by_itbs,
                               watchdog_ps, tables, graph, perf,
                               fault_plan, reliable, reconfig,
                               recovery_threshold, collect_percentiles,
                               check_invariants)


def _coerce(value: Any, cls: type) -> Any:
    """``True`` -> defaults, mapping -> ``from_dict``, instance -> as-is."""
    if value is True:
        return cls()
    if isinstance(value, Mapping):
        return cls.from_dict(dict(value))
    return value


def _run_simulation(config: SimConfig, collect_links: bool,
                    root: int, sort_by_itbs: bool,
                    watchdog_ps: Optional[int],
                    tables: Optional[RoutingTables],
                    graph: Optional[NetworkGraph],
                    perf: Optional[PerfRecorder],
                    fault_plan: Optional[Any] = None,
                    reliable: Optional[Any] = None,
                    reconfig: Optional[Any] = None,
                    recovery_threshold: float = 0.9,
                    collect_percentiles: bool = False,
                    check_invariants: bool = False) -> RunSummary:
    t_start = _now()
    config.validate()
    if graph is not None:
        g = graph
        topo_key = None          # anonymous graph: schedules not memoised
        if tables is None:
            tables = compute_tables(g, config.routing, root,
                                    config.params.max_routes_per_pair,
                                    sort_by_itbs)
    else:
        topo_key = (config.topology, _freeze_kwargs(config.topology_kwargs))
        g = get_graph(config.topology, config.topology_kwargs)
        if tables is None:
            tables = get_tables(g, topo_key, config.routing, root,
                                config.params.max_routes_per_pair,
                                sort_by_itbs)

    sim = Simulator()
    policy = make_policy(config.policy, seed=config.seed)
    network = make_network(config.engine, sim, g, tables, policy,
                           config.params,
                           message_bytes=config.message_bytes)
    collector = LatencyCollector(keep_samples=collect_percentiles)
    caps = network.capabilities()
    transport = None
    if reliable:
        transport = ReliableTransport(network,
                                      _coerce(reliable, ReliableParams))
        # the collector sees unique messages at message latency, not
        # per-attempt deliveries (duplicates are suppressed upstream)
        transport.add_message_callback(collector.on_delivered)
    elif (CAP_BATCH_DELIVERY in caps and not policy.needs_feedback
          and fault_plan is None):
        # batch engines report delivery cohorts straight into the
        # collector; per-packet callbacks stay off the hot path
        network.delivery_sink = collector
    else:
        network.add_delivery_callback(collector.on_delivered)
    # adaptive policies learn from delivery latencies; stateless ones
    # declare needs_feedback=False and skip the per-delivery call
    if policy.needs_feedback:
        network.add_delivery_callback(policy.feedback)
    manager = None
    if reconfig:
        manager = ReconfigurationManager(
            network, _coerce(reconfig, ReconfigParams),
            max_routes_per_pair=config.params.max_routes_per_pair,
            sort_by_itbs=sort_by_itbs)

    interval = per_host_interval_ps(config.injection_rate,
                                    config.message_bytes, g)
    pattern, arrivals = make_workload(g, config.traffic,
                                      config.traffic_kwargs,
                                      config.arrival, config.arrival_kwargs,
                                      interval)
    # permutations may silence some hosts (e.g. the 32 palindromic ids
    # under bit-reversal): the load actually offered to the network is
    # proportionally lower than the nominal per-host rate
    effective_rate = (config.injection_rate
                      * len(pattern.active_hosts()) / g.num_hosts)
    traffic = TrafficProcess(sim,
                             transport if transport is not None else network,
                             pattern, arrivals, seed=config.seed,
                             max_messages=config.max_messages)

    if watchdog_ps is None:
        # generous: many times the zero-load service time of a message
        watchdog_ps = 200 * (config.message_bytes
                             * config.params.flit_cycle_ps
                             + 20 * config.params.routing_delay_ps)
    network.install_watchdog(watchdog_ps)

    if fault_plan is not None:
        if isinstance(fault_plan, Mapping):
            fault_plan = FaultPlan.from_dict(fault_plan)
        network.install_fault_plan(fault_plan)

    tracker = None
    if fault_plan:
        tracker = RecoveryTracker(max(1, config.measure_ps // 20))
        if transport is not None:
            transport.add_message_callback(tracker.on_delivered)
        else:
            network.add_delivery_callback(tracker.on_delivered)

    t_setup_done = _now()
    if (CAP_BATCH_INJECT in caps and transport is None
            and not config.max_messages):
        # batch engines take the whole deterministic schedule up front
        # (identical RNG streams, see TrafficProcess.pregenerate) so no
        # per-message generation events hit the heap
        t_end = config.warmup_ps + config.measure_ps
        skey = None
        if topo_key is not None:
            skey = (topo_key, config.traffic,
                    _freeze_kwargs(config.traffic_kwargs),
                    config.arrival, _freeze_kwargs(config.arrival_kwargs),
                    interval, config.seed, t_end)
        schedule = _SCHEDULE_CACHE.get(skey) if skey is not None else None
        if schedule is None:
            schedule = traffic.pregenerate(t_end)
            if skey is not None:
                if len(_SCHEDULE_CACHE) >= _SCHEDULE_CACHE_MAX:
                    _SCHEDULE_CACHE.pop(next(iter(_SCHEDULE_CACHE)))
                _SCHEDULE_CACHE[skey] = schedule
        else:
            traffic.adopt_schedule(schedule)
        network.prime_schedule(schedule)
    else:
        traffic.start()
    sim.run_until(config.warmup_ps)
    # engine first: batch engines flush work at or before the warm-up
    # boundary into the collector, which the reset below then discards
    network.reset_stats()
    collector.reset()
    if check_invariants:
        # warm-up boundary: conservation laws, occupancy bounds and
        # ITB byte-accounting must hold exactly here (CAP_INVARIANTS)
        audit_invariants(network).raise_if_failed()
    if tracker is not None:
        tracker.start(config.warmup_ps)
    delivered_before = network.delivered
    generated_before = network.generated
    dropped_before = network.dropped
    unroutable_before = network.dropped_unroutable
    transport_before = transport.stats() if transport is not None else None
    reconfig_before = manager.reconfigurations if manager is not None else 0
    backlog_before = network.in_flight
    sim.run_until(config.warmup_ps + config.measure_ps)
    network.finalize()
    if check_invariants:
        # measurement boundary; with traffic stopped and the fabric
        # drained the stricter quiescent-state laws apply too
        audit_invariants(network,
                         drained=network.in_flight == 0
                         and sim.pending_events == 0).raise_if_failed()
    t_sim_done = _now()
    backlog_growth = network.in_flight - backlog_before

    if perf is not None:
        perf.record(wall_s=t_sim_done - t_start,
                    setup_wall_s=t_setup_done - t_start,
                    sim_wall_s=t_sim_done - t_setup_done,
                    events=sim.events,
                    messages_delivered=network.delivered,
                    sim_time_ps=sim.now)

    links = None
    if collect_links:
        links = collect_link_stats(network, config.measure_ps, config.params)

    dropped = network.dropped - dropped_before
    unroutable = network.dropped_unroutable - unroutable_before
    if transport is not None:
        ts = transport.stats()
        tdelta = {k: ts[k] - transport_before[k] for k in ts}
        messages_generated = tdelta["messages"]
        messages_delivered = tdelta["delivered"]
    else:
        tdelta = {"retransmissions": 0, "duplicates": 0,
                  "permanent_losses": 0, "recovered": 0}
        messages_generated = network.generated - generated_before
        messages_delivered = network.delivered - delivered_before

    time_to_recover_ns = None
    if tracker is not None:
        ttr = tracker.time_to_recover_ps(
            fault_plan.first_t_ps, config.warmup_ps + config.measure_ps,
            recovery_threshold)
        if ttr is not None:
            time_to_recover_ns = ttr / 1_000

    # engines without a finite-pool model have no ITB statistics to
    # report; zeros are the true values for an unbounded pool
    itb = (network.itb_stats() if CAP_ITB_POOL in caps
           else NO_ITB_STATS)
    return RunSummary(
        config=config,
        offered_flits_ns_switch=effective_rate,
        accepted_flits_ns_switch=collector.accepted_flits_ns_switch(
            config.measure_ps, g.num_switches),
        messages_delivered=messages_delivered,
        messages_generated=messages_generated,
        messages_dropped=dropped,
        dropped_in_flight=dropped - unroutable,
        dropped_unroutable=unroutable,
        retransmissions=tdelta["retransmissions"],
        duplicate_deliveries=tdelta["duplicates"],
        permanent_losses=tdelta["permanent_losses"],
        recovered_messages=tdelta["recovered"],
        reconfigurations=(manager.reconfigurations - reconfig_before
                          if manager is not None else 0),
        time_to_recover_ns=time_to_recover_ns,
        avg_latency_ns=collector.avg_latency_ns(),
        avg_network_latency_ns=collector.avg_network_latency_ns(),
        max_latency_ns=(collector.max_latency_ps / 1_000
                        if collector.messages else None),
        avg_itbs_per_message=collector.avg_itbs_per_message(),
        itb_overflow_count=itb.overflow_count,
        itb_peak_bytes=itb.peak_bytes,
        link_utilization=links,
        backlog_growth=backlog_growth,
        p99_latency_ns=(collector.percentile_ns(0.99)
                        if collect_percentiles else None),
    )

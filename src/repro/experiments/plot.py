"""Terminal plotting: latency-vs-traffic curves as ASCII scatter plots.

The paper's figures are latency/accepted-traffic plots; this module
renders the same curves in a terminal so ``python -m repro experiment
fig7a --plot`` (and the examples) can show the *shape* -- flat latency
followed by the vertical bend at saturation -- not just number tables.

No third-party plotting dependency: a fixed-size character canvas with
one glyph per series.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .sweep import SweepResult

#: glyphs assigned to series in order
GLYPHS = "ox+*#@"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(pos * (cells - 1) + 0.5)))


def render_curves(series: Sequence[SweepResult], width: int = 64,
                  height: int = 18, title: str = "",
                  latency_cap_ns: Optional[float] = None) -> str:
    """Plot accepted traffic (x) vs average latency (y) for each series.

    ``latency_cap_ns`` clips the y axis (saturated points have
    window-bound latencies that would otherwise squash the flat region);
    by default it is 4x the highest latency among non-saturated points.
    """
    points: List[Tuple[float, float, str]] = []
    used: List[Tuple[str, str]] = []
    stable_lat: List[float] = []
    for i, s in enumerate(series):
        glyph = GLYPHS[i % len(GLYPHS)]
        used.append((glyph, s.label))
        for r in s.runs:
            if r.avg_latency_ns is None:
                continue
            points.append((r.accepted_flits_ns_switch, r.avg_latency_ns,
                           glyph))
            if not r.saturated:
                stable_lat.append(r.avg_latency_ns)
    if not points:
        return "(no data)"

    if latency_cap_ns is None:
        latency_cap_ns = 4 * max(stable_lat) if stable_lat else \
            max(p[1] for p in points)
    xs = [p[0] for p in points]
    x_lo, x_hi = 0.0, max(xs)
    y_lo = min(p[1] for p in points)
    y_hi = latency_cap_ns

    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        col = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(min(y, y_hi), y_lo, y_hi, height)
        grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"latency (ns), {y_lo:.0f} .. {y_hi:.0f} "
                 f"(clipped); x: accepted traffic 0 .. {x_hi:.4f} "
                 f"flits/ns/switch")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append("  " + "   ".join(f"{g} {label}" for g, label in used))
    return "\n".join(lines)

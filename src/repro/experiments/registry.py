"""Experiment index: id -> callable, mirroring DESIGN.md's table.

``run_experiment("fig7a", profile)`` regenerates one paper artefact.
The registry is what `benchmarks/` and `examples/` iterate over, and
the docstring of each callable carries the paper's reported numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from . import adversary, figures, tables, tournament
from ..resilience import campaign as resilience_campaign
from ..resilience import recovery as resilience_recovery
from .profiles import Profile


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artefact."""

    exp_id: str
    kind: str  # "latency-panel" | "link-map" | "hotspot-table"
               # | "resilience-table" | "recovery-table"
               # | "tournament-table" | "stability-table"
    description: str
    fn: Callable[[Profile], Any]


EXPERIMENTS: Dict[str, Experiment] = {}


def _register(exp_id: str, kind: str, description: str,
              fn: Callable[[Profile], Any]) -> None:
    EXPERIMENTS[exp_id] = Experiment(exp_id, kind, description, fn)


_register("fig7a", "latency-panel",
          "Uniform traffic, 2-D torus", figures.fig7a)
_register("fig7b", "latency-panel",
          "Uniform traffic, express torus", figures.fig7b)
_register("fig7c", "latency-panel",
          "Uniform traffic, CPLANT", figures.fig7c)
_register("fig8", "link-map",
          "Link utilisation, torus, uniform", figures.fig8)
_register("fig9", "link-map",
          "Link utilisation, express torus, uniform", figures.fig9)
_register("fig10a", "latency-panel",
          "Bit-reversal, 2-D torus", figures.fig10a)
_register("fig10b", "latency-panel",
          "Bit-reversal, express torus", figures.fig10b)
_register("fig11", "link-map",
          "Link utilisation, torus, 10% hotspot", figures.fig11)
_register("fig12a", "latency-panel",
          "Local traffic, 2-D torus", figures.fig12a)
_register("fig12b", "latency-panel",
          "Local traffic, express torus", figures.fig12b)
_register("fig12c", "latency-panel",
          "Local traffic, CPLANT", figures.fig12c)
_register("table1", "hotspot-table",
          "Hotspot throughput, 2-D torus", tables.table1)
_register("table2", "hotspot-table",
          "Hotspot throughput, express torus", tables.table2)
_register("table3", "hotspot-table",
          "Hotspot throughput, CPLANT", tables.table3)
_register("resilience", "resilience-table",
          "Graceful degradation under link failures, 4x4 torus",
          resilience_campaign.torus_resilience)
_register("recovery", "recovery-table",
          "Reliable-delivery recovery from a mid-run link failure, "
          "4x4 torus", resilience_recovery.torus_recovery)
_register("tournament", "tournament-table",
          "Every registered scheme x {torus, mesh} x {uniform, "
          "bit-reversal, incast, uniform+onoff} with failure retention",
          tournament.default_tournament)
_register("adversary", "stability-table",
          "(r, b)-adversarial stability: up*/down* vs ITB backlog "
          "under worst-case bursty injection, 4x4 torus",
          adversary.torus_adversary)


def run_experiment(exp_id: str, profile: Profile,
                   executor: Any = None) -> Any:
    """Run one registered experiment under ``profile``.

    ``executor`` (a :class:`repro.orchestrator.Executor`) routes every
    simulation point of the artefact through the parallel worker pool
    and the on-disk result store; ``None`` keeps the plain sequential
    path.  Every registered callable accepts the keyword.
    """
    try:
        exp = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(f"unknown experiment {exp_id!r}; "
                         f"available: {sorted(EXPERIMENTS)}") from None
    return exp.fn(profile, executor=executor)

"""Cross-scheme tournament: every routing scheme against every rival.

The paper compares two schemes on three topologies; the registry makes
the comparison open-ended.  A *tournament* runs every requested
``(scheme, topology, traffic pattern)`` cell and reports, per cell:

* **saturation throughput** -- the knee of the accepted-traffic curve
  (:func:`repro.metrics.saturation.find_saturation`);
* **knee offered load** -- the highest offered rate whose latency stays
  within 2x the zero-load latency (:func:`~repro.metrics.saturation
  .knee_from_runs` over the search's own probe runs, no extra sims);
* **p99 latency** at a stable operating point (80 % of the last stable
  rate), from a probe run that keeps per-message samples;
* optionally **retention**: degraded/healthy throughput after the
  PR-4 failure sampler kills ``failures`` links (schemes that cannot
  route the broken fabric -- grid-bound ones lose their geometry --
  report no retention rather than a crash).

Cells where the scheme's capability declaration rejects the topology
(e.g. dimension-order routing on an irregular network) are marked
unsupported up front and never dispatched.  Supported cells are
independent orchestrator tasks: parallel, checkpointed in the result
store, restartable; the inline path runs the same task function.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import SimConfig
from ..metrics.saturation import find_saturation, knee_from_runs
from ..routing.schemes import available_schemes, get_scheme, scheme_label
from ..traffic.registry import get_pattern_spec, parse_workload
from .profiles import Profile
from .runner import get_graph, run_simulation

#: fn-path of :func:`tournament_cell_task` for the orchestrator
TOURNAMENT_TASK_FN = "repro.experiments.tournament:tournament_cell_task"

#: latency multiple (over zero-load) that defines the knee
KNEE_THRESHOLD = 2.0


@dataclass(frozen=True)
class TopologySpec:
    """One tournament column: a topology builder plus its arguments."""

    name: str
    kwargs: Dict[str, Any]
    label: str


@dataclass(frozen=True)
class SchemeEntry:
    """One tournament row: a scheme with its path-selection policy."""

    routing: str
    policy: str
    label: str


@dataclass(frozen=True)
class TournamentCell:
    """One (scheme, topology, pattern) measurement."""

    routing: str
    policy: str
    label: str
    topology: str
    pattern: str
    #: False when the scheme's capability declaration rejects the
    #: topology; every metric below is meaningless then
    supported: bool
    throughput: float = 0.0
    converged: bool = False
    #: offered load at the latency knee (None when the sweep never
    #: produced two stable points to locate one)
    knee_offered: Optional[float] = None
    knee_latency_ns: Optional[float] = None
    knee_bracketed: bool = False
    #: stable operating point the percentile probe ran at
    probe_rate: Optional[float] = None
    p99_latency_ns: Optional[float] = None
    avg_latency_ns: Optional[float] = None
    #: saturation throughput on the failure-degraded fabric (None when
    #: no failures were requested or the scheme cannot route the
    #: broken graph)
    degraded_throughput: Optional[float] = None
    #: degraded / healthy throughput
    retention: Optional[float] = None


@dataclass(frozen=True)
class TournamentReport:
    """Full tournament outcome: the cross product of the three axes."""

    schemes: Tuple[SchemeEntry, ...]
    topologies: Tuple[TopologySpec, ...]
    patterns: Tuple[str, ...]
    seed: int
    #: links killed for the retention measurement (0 = skipped)
    failures: int
    cells: Tuple[TournamentCell, ...]

    def cell(self, label: str, topology: str,
             pattern: str) -> TournamentCell:
        """Look up one cell by (scheme label, topology label, pattern)."""
        for c in self.cells:
            if (c.label, c.topology, c.pattern) == (label, topology,
                                                    pattern):
                return c
        raise KeyError((label, topology, pattern))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe artifact (written by ``repro tournament --json``)."""
        return {
            "schemes": [asdict(s) for s in self.schemes],
            "topologies": [asdict(t) for t in self.topologies],
            "patterns": list(self.patterns),
            "seed": self.seed,
            "failures": self.failures,
            "cells": [asdict(c) for c in self.cells],
        }


def default_entries(schemes: Optional[Sequence[str]] = None
                    ) -> Tuple[SchemeEntry, ...]:
    """Scheme entries with their natural policies.

    Multipath schemes compete with round-robin selection (their whole
    point), single-path schemes with ``"sp"`` (the policy is inert).
    """
    names = tuple(schemes) if schemes else available_schemes()
    entries = []
    for name in names:
        s = get_scheme(name)  # raises with the available list on typos
        policy = "rr" if s.multipath else "sp"
        entries.append(SchemeEntry(name, policy, scheme_label(name, policy)))
    return tuple(entries)


def _cell_payload(entry: SchemeEntry, topo: TopologySpec, pattern: str,
                  profile: Profile, start_rate: float, seed: int,
                  failed_links: Tuple[int, ...]) -> dict:
    """JSON-safe description of one cell (orchestrator task payload).

    ``pattern`` is a workload spec (``"uniform"``, ``"uniform+onoff"``);
    kwargs come from the registry declarations' defaults, so the
    tournament needs no per-pattern plumbing.
    """
    traffic, arrival = parse_workload(pattern)
    return {
        "topology": topo.name,
        "topology_kwargs": dict(topo.kwargs),
        "routing": entry.routing,
        "policy": entry.policy,
        "traffic": traffic,
        "traffic_kwargs": {},
        "arrival": arrival,
        "arrival_kwargs": {},
        "seed": seed,
        "start_rate": start_rate,
        "failed_links": list(failed_links),
        "sat_warmup_ps": profile.sat_warmup_ps,
        "sat_measure_ps": profile.sat_measure_ps,
        "growth": profile.sat_growth,
        "refine_steps": profile.sat_refine_steps,
        "knee_threshold": KNEE_THRESHOLD,
    }


def tournament_cell_task(payload: dict) -> dict:
    """Worker function: one cell's searches and probe.

    JSON in, JSON out: the saturation search doubles as the knee sweep
    (its probe runs *are* a latency-vs-load curve), then one extra run
    at a stable rate collects per-message samples for the p99.
    """
    def cfg_at(rate: float, topology: str,
               topology_kwargs: dict) -> SimConfig:
        return SimConfig(
            topology=topology, topology_kwargs=topology_kwargs,
            routing=payload["routing"], policy=payload["policy"],
            traffic=payload["traffic"],
            traffic_kwargs=payload["traffic_kwargs"],
            arrival=payload["arrival"],
            arrival_kwargs=payload["arrival_kwargs"],
            injection_rate=rate,
            warmup_ps=payload["sat_warmup_ps"],
            measure_ps=payload["sat_measure_ps"],
            seed=payload["seed"])

    topo = payload["topology"]
    topo_kwargs = payload["topology_kwargs"]
    sat = find_saturation(
        lambda rate: run_simulation(cfg_at(rate, topo, topo_kwargs)),
        payload["start_rate"], growth=payload["growth"],
        refine_steps=payload["refine_steps"])
    knee = knee_from_runs(sat.runs, payload["knee_threshold"])

    if math.isfinite(sat.last_stable_rate) and sat.last_stable_rate > 0:
        probe_rate = 0.8 * sat.last_stable_rate
    else:
        probe_rate = payload["start_rate"]
    probe = run_simulation(cfg_at(probe_rate, topo, topo_kwargs),
                           collect_percentiles=True)

    degraded_throughput = None
    if payload["failed_links"]:
        mutated_kwargs = {"base": topo, "base_kwargs": dict(topo_kwargs),
                          "failed_links": list(payload["failed_links"])}
        try:
            degraded = find_saturation(
                lambda rate: run_simulation(
                    cfg_at(rate, "mutated", mutated_kwargs)),
                payload["start_rate"], growth=payload["growth"],
                refine_steps=payload["refine_steps"])
            degraded_throughput = degraded.throughput
        except ValueError:
            # the scheme cannot route the broken fabric (grid-bound
            # schemes lose their geometry when links die): report "no
            # retention" rather than crashing the cell
            degraded_throughput = None

    return {
        "throughput": sat.throughput,
        "converged": sat.converged,
        "runs": len(sat.runs),
        "knee_offered": knee.offered if knee else None,
        "knee_latency_ns": knee.latency if knee else None,
        "knee_bracketed": knee.bracketed if knee else False,
        "probe_rate": probe_rate,
        "p99_latency_ns": probe.p99_latency_ns,
        "avg_latency_ns": probe.avg_latency_ns,
        "degraded_throughput": degraded_throughput,
    }


def run_tournament(entries: Sequence[SchemeEntry],
                   topologies: Sequence[TopologySpec],
                   patterns: Sequence[str],
                   profile: Profile,
                   seed: int = 1,
                   failures: int = 0,
                   start_rate: float = 0.005,
                   executor=None) -> TournamentReport:
    """Run the full cross product and assemble the report.

    Unsupported cells -- the scheme's capability declaration rejects
    the topology, or the workload's destination pattern is not defined
    on it (bit-reversal needs a power-of-two host count) -- are
    recorded but never simulated.  ``failures`` > 0 additionally runs
    every supported cell's saturation search on a fabric with that many
    links killed (the PR-4 deterministic failure sampler, same seed).
    """
    from ..resilience.sampling import sample_failed_links

    failure_sets: Dict[str, Tuple[int, ...]] = {}
    supported: Dict[Tuple[str, str], bool] = {}
    pattern_ok: Dict[Tuple[str, str], bool] = {}
    for topo in topologies:
        g = get_graph(topo.name, topo.kwargs)
        failure_sets[topo.label] = (sample_failed_links(g, failures, seed)
                                    if failures > 0 else ())
        for e in entries:
            supported[(e.routing, topo.label)] = \
                get_scheme(e.routing).supports(g)
        for pattern in patterns:
            traffic, _ = parse_workload(pattern)
            pattern_ok[(pattern, topo.label)] = \
                get_pattern_spec(traffic).supports(g)

    specs: List[Tuple[SchemeEntry, TopologySpec, str, dict]] = []
    for pattern in patterns:
        for topo in topologies:
            for e in entries:
                if not (supported[(e.routing, topo.label)]
                        and pattern_ok[(pattern, topo.label)]):
                    continue
                specs.append((e, topo, pattern, _cell_payload(
                    e, topo, pattern, profile, start_rate, seed,
                    failure_sets[topo.label])))

    if executor is not None:
        results = executor.run_tasks(
            TOURNAMENT_TASK_FN, [p for *_, p in specs],
            labels=[f"tournament {e.label} {t.label} {pat}"
                    for e, t, pat, _ in specs])
    else:
        results = [tournament_cell_task(p) for *_, p in specs]

    by_key: Dict[Tuple[str, str, str], TournamentCell] = {}
    for (e, topo, pattern, _), r in zip(specs, results):
        thr = r["throughput"]
        deg = r["degraded_throughput"]
        by_key[(e.label, topo.label, pattern)] = TournamentCell(
            routing=e.routing, policy=e.policy, label=e.label,
            topology=topo.label, pattern=pattern, supported=True,
            throughput=thr, converged=r["converged"],
            knee_offered=r["knee_offered"],
            knee_latency_ns=r["knee_latency_ns"],
            knee_bracketed=r["knee_bracketed"],
            probe_rate=r["probe_rate"],
            p99_latency_ns=r["p99_latency_ns"],
            avg_latency_ns=r["avg_latency_ns"],
            degraded_throughput=deg,
            retention=(deg / thr if deg is not None and thr > 0
                       else None))

    cells = []
    for pattern in patterns:
        for topo in topologies:
            for e in entries:
                cell = by_key.get((e.label, topo.label, pattern))
                if cell is None:
                    cell = TournamentCell(
                        routing=e.routing, policy=e.policy, label=e.label,
                        topology=topo.label, pattern=pattern,
                        supported=False)
                cells.append(cell)
    return TournamentReport(tuple(entries), tuple(topologies),
                            tuple(patterns), seed, failures, tuple(cells))


# -- rendering ---------------------------------------------------------------


#: shade ramp for the heatmap: cell's standing relative to column best
_SHADES = ".:=#"


def _shade(frac: float) -> str:
    frac = max(0.0, min(1.0, frac))
    return _SHADES[min(len(_SHADES) - 1, int(frac * len(_SHADES)))]


def _matrix(title: str, report: TournamentReport, pattern: str,
            value, fmt: str, higher_better: bool = True) -> List[str]:
    """One metric as rows=schemes x cols=topologies, shaded per column.

    Each cell shows the value plus a shade mark scaled to the column's
    best (``#`` = at/near the winner), so relative standing is visible
    at a glance; the winner also gets a ``*``.  Unsupported cells and
    missing values render ``--``.
    """
    width = max(11, max(len(t.label) for t in report.topologies) + 2)
    name_w = max(len(e.label) for e in report.schemes) + 2
    lines = [f"{title} [{pattern}]",
             " " * name_w + "".join(f"{t.label:>{width}}"
                                    for t in report.topologies)]
    columns: Dict[str, List[Optional[float]]] = {}
    for t in report.topologies:
        columns[t.label] = [
            value(report.cell(e.label, t.label, pattern))
            if report.cell(e.label, t.label, pattern).supported else None
            for e in report.schemes]
    best: Dict[str, Optional[float]] = {}
    for t in report.topologies:
        vals = [v for v in columns[t.label] if v is not None]
        best[t.label] = ((max(vals) if higher_better else min(vals))
                         if vals else None)
    for i, e in enumerate(report.schemes):
        row = f"{e.label:<{name_w}}"
        for t in report.topologies:
            v, b = columns[t.label][i], best[t.label]
            if v is None:
                row += f"{'--':>{width}}"
                continue
            mark = "*" if v == b else " "
            # standing in (0, 1]: 1 = column winner, regardless of
            # whether high or low values win this metric
            if higher_better:
                frac = v / b if b else 1.0
            else:
                frac = b / v if v else 1.0
            row += f"{format(v, fmt) + mark + _shade(frac):>{width}}"
        lines.append(row)
    return lines


def render_tournament(report: TournamentReport) -> str:
    """ASCII report: throughput + knee heatmaps, p99, retention."""
    out: List[str] = []
    topo_names = ", ".join(t.label for t in report.topologies)
    out.append(f"Routing-scheme tournament (seed {report.seed}): "
               f"{len(report.schemes)} schemes x [{topo_names}] x "
               f"{len(report.patterns)} patterns")
    out.append("cells: value + shade vs column best "
               f"({_SHADES[-1]!r} = best, '*' = winner, '--' = scheme "
               "does not support the topology)")
    for pattern in report.patterns:
        out.append("")
        out.extend(_matrix("saturation throughput (flits/ns/switch)",
                           report, pattern,
                           lambda c: c.throughput, ".4f"))
        out.append("")
        out.extend(_matrix("latency knee (offered flits/ns/switch)",
                           report, pattern,
                           lambda c: c.knee_offered, ".4f"))
        out.append("")
        out.extend(_matrix("p99 latency at 0.8x stable rate (ns)",
                           report, pattern,
                           lambda c: c.p99_latency_ns, ".0f",
                           higher_better=False))
        if report.failures > 0:
            out.append("")
            out.extend(_matrix(
                f"throughput retention after {report.failures} "
                "link failures", report, pattern,
                lambda c: c.retention, ".2f"))
    return "\n".join(out)


# -- registry entry ----------------------------------------------------------


def default_tournament(profile: Profile, executor=None) -> TournamentReport:
    """Registry entry: every registered scheme on scaled-down grids.

    4x4 torus and 4x4 mesh (2 hosts/switch -> 32 hosts, a power of two
    so bit-reversal is defined) under four workloads -- uniform and
    bit-reversal (the paper's axes) plus many-to-one incast and bursty
    ON/OFF uniform traffic (the extension axes) -- with a
    2-link-failure retention column; small enough that the full cross
    product stays tractable at the bench profile.
    """
    topologies = (
        TopologySpec("torus", {"rows": 4, "cols": 4,
                               "hosts_per_switch": 2}, "torus 4x4"),
        TopologySpec("mesh", {"rows": 4, "cols": 4,
                              "hosts_per_switch": 2}, "mesh 4x4"),
    )
    return run_tournament(default_entries(), topologies,
                          ("uniform", "bit-reversal", "incast",
                           "uniform+onoff"), profile,
                          seed=1, failures=2, executor=executor)

"""ASCII rendering of figures and tables (console-friendly output).

The benches and examples print these; EXPERIMENTS.md embeds them.  For
the torus topologies the link-utilisation maps are rendered as an RxC
grid of per-switch figures (mean utilisation of the channels leaving
each switch), which makes the paper's "hot around the root" vs
"balanced" contrast directly visible in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .figures import FigureResult, LinkMapResult
from .tables import HotspotTable, PAPER_TABLE_AVERAGES


def render_figure(fig: FigureResult) -> str:
    """Latency-vs-traffic panel as an aligned text table."""
    lines = [f"== {fig.fig_id}: {fig.title} =="]
    header = f"{'label':10s} {'offered':>9s} {'accepted':>9s} {'lat(ns)':>10s} {'sat':>4s}"
    for s in fig.series:
        lines.append(f"-- {s.label}")
        lines.append(header)
        for r in s.runs:
            lat = (f"{r.avg_latency_ns:10.0f}"
                   if r.avg_latency_ns is not None else "       n/a")
            lines.append(
                f"{s.label:10s} {r.offered_flits_ns_switch:9.4f} "
                f"{r.accepted_flits_ns_switch:9.4f} {lat} "
                f"{'yes' if r.saturated else 'no':>4s}")
    lines.append("-- throughput (max accepted traffic, flits/ns/switch)")
    for s in fig.series:
        paper = fig.paper_throughput.get(s.label)
        paper_s = f" (paper: {paper:.3f})" if paper is not None else ""
        lines.append(f"   {s.label:10s} {s.throughput():.4f}{paper_s}")
    return "\n".join(lines)


def render_link_map(res: LinkMapResult,
                    grid: Optional[Tuple[int, int]] = None) -> str:
    """Link-utilisation snapshot; with ``grid=(rows, cols)`` also an
    RxC per-switch heat map (percent utilisation)."""
    u = res.utilization
    s = u.summary()
    lines = [
        f"== {res.fig_id}: {res.title} ==",
        f"rate={res.rate} flits/ns/switch, window={u.window_ps} ps",
        (f"link utilisation: max={s['max']:.1%} mean={s['mean']:.1%} "
         f"min={s['min']:.1%}; {s['frac_below_10pct']:.0%} of links <10%, "
         f"{s['frac_above_30pct']:.0%} >30%"),
        "hottest directed channels (util, src->dst switch):",
    ]
    for util, src, dst, _lid in u.hottest(5):
        lines.append(f"   {util:6.1%}  {src:3d} -> {dst:3d}")
    if grid is not None:
        rows, cols = grid
        per_switch = np.zeros(rows * cols)
        counts = np.zeros(rows * cols)
        for (src, _dst, _lid), util in zip(u.channel_ends, u.utilization):
            per_switch[src] += util
            counts[src] += 1
        counts[counts == 0] = 1
        per_switch /= counts
        lines.append("mean outgoing-channel utilisation per switch (%):")
        for r in range(rows):
            row = " ".join(f"{per_switch[r * cols + c] * 100:5.1f}"
                           for c in range(cols))
            lines.append("   " + row)
    return "\n".join(lines)


def render_hotspot_table(tab: HotspotTable) -> str:
    """A hotspot table in the paper's layout (locations x routings),
    with the paper's average row alongside when known."""
    labels = ["UP/DOWN", "ITB-SP", "ITB-RR"]
    lines = [f"== {tab.table_id}: {tab.title} =="]
    for frac in tab.fractions:
        lines.append(f"-- hotspot load {frac:.0%}")
        lines.append(f"{'hotspot':>8s} " +
                     " ".join(f"{lab:>8s}" for lab in labels))
        for i, loc in enumerate(tab.locations, 1):
            vals = " ".join(f"{tab.throughput[(frac, loc, lab)]:8.4f}"
                            for lab in labels)
            lines.append(f"{i:8d} {vals}")
        avg = tab.averages()
        vals = " ".join(f"{avg[(frac, lab)]:8.4f}" for lab in labels)
        lines.append(f"{'Avg':>8s} {vals}")
        paper = PAPER_TABLE_AVERAGES.get(tab.table_id)
        if paper:
            vals = " ".join(f"{paper[(frac, lab)]:8.4f}" for lab in labels)
            lines.append(f"{'paper':>8s} {vals}")
        factors = tab.improvement_factors()
        lines.append(
            f"{'x UP/DOWN':>8s} {'1.00':>8s} "
            f"{factors[(frac, 'ITB-SP')]:8.2f} "
            f"{factors[(frac, 'ITB-RR')]:8.2f}")
    return "\n".join(lines)


def render_throughput_summary(
        results: Dict[str, Dict[str, float]],
        paper: Dict[str, Dict[str, Optional[float]]]) -> str:
    """Side-by-side measured vs paper throughput across experiments."""
    lines = [f"{'experiment':12s} {'label':10s} {'measured':>9s} {'paper':>9s}"]
    for exp_id, per_label in results.items():
        for label, value in per_label.items():
            p = paper.get(exp_id, {}).get(label)
            p_s = f"{p:9.4f}" if p is not None else "      n/a"
            lines.append(f"{exp_id:12s} {label:10s} {value:9.4f} {p_s}")
    return "\n".join(lines)

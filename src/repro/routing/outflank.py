"""OutFlank-style adaptive non-minimal routing for grids (arXiv 1310.7453).

OutFlank Routing (OFR, Versaci 2013) raises toroidal throughput by
letting packets *flank* the congested minimal bounding box: besides the
dimension-ordered minimal paths, a packet may first step sideways onto
an adjacent row or column and travel there, rejoining the destination
coordinate at the end.  Under adaptive selection the lateral detours
drain load off the saturated central rings, which is where the +2 hops
pay for themselves.

This module expresses OFR as **source-route alternative sets** so both
existing engines run it unchanged:

* per pair, the two dimension-ordered minimal paths (XY and YX) plus up
  to four flanking detours via the adjacent rows/columns of the source
  (wrap-aware on tori, clipped at mesh edges);
* deadlock freedom comes from the repo's native mechanism rather than
  OFR's virtual-network split (Myrinet has no virtual channels): every
  candidate path is cut at its up*/down* violations and joined through
  in-transit hosts (:func:`repro.routing.itb.route_from_path`), so each
  leg is a legal up*/down* sub-path and the scheme registers with the
  ``"updown"`` discipline;
* the alternative sets feed the existing RR / adaptive selection
  policies, which supply OFR's adaptivity at the source.

Registered as ``"outflank"``; requires grid geometry
(``graph.grid is not None``), i.e. torus, express torus or mesh.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..topology.graph import GridGeometry, NetworkGraph
from .dor import _ring_step
from .itb import _ItbHostCycler, balance_first_alternatives, route_from_path
from .routes import SourceRoute
from .schemes import Scheme, register_scheme
from .spanning_tree import build_spanning_tree
from .table import RoutingTables
from .updown import orient_links


def _walk(frm: int, to: int, size: int, wrap: bool) -> List[int]:
    """Ring coordinates strictly after ``frm`` up to and including
    ``to``, along the shorter arc (ties toward +1, like DOR)."""
    out: List[int] = []
    x = frm
    while x != to:
        x = (x + _ring_step(x, to, size, wrap)) % size
        out.append(x)
    return out


def candidate_paths(grid: GridGeometry, src: int, dst: int
                    ) -> List[Tuple[int, ...]]:
    """OutFlank candidate switch paths for one ordered pair.

    Deterministic order: the minimal dimension-ordered paths first
    (XY, then YX when distinct), then the flanking detours sorted by
    (length, path).  Duplicates (e.g. XY == YX on a shared row) are
    emitted once.
    """
    (r0, c0), (r1, c1) = grid.coords(src), grid.coords(dst)
    rows, cols, wrap = grid.rows, grid.cols, grid.wrap

    def build(rsteps_first: bool, via_row: Optional[int] = None,
              via_col: Optional[int] = None) -> Tuple[int, ...]:
        """One candidate as a coordinate walk -> switch-id tuple."""
        path = [(r0, c0)]
        if via_row is not None:
            # flank: sidestep onto via_row, run the columns there, then
            # close the rows along the destination column
            path.append((via_row, c0))
            path.extend((via_row, c) for c in _walk(c0, c1, cols, wrap))
            path.extend((r, c1) for r in _walk(via_row, r1, rows, wrap))
        elif via_col is not None:
            path.append((r0, via_col))
            path.extend((r, via_col) for r in _walk(r0, r1, rows, wrap))
            path.extend((r1, c) for c in _walk(via_col, c1, cols, wrap))
        elif rsteps_first:
            path.extend((r, c0) for r in _walk(r0, r1, rows, wrap))
            path.extend((r1, c) for c in _walk(c0, c1, cols, wrap))
        else:
            path.extend((r0, c) for c in _walk(c0, c1, cols, wrap))
            path.extend((r, c1) for r in _walk(r0, r1, rows, wrap))
        return tuple(grid.switch(r, c) for r, c in path)

    minimal = [build(rsteps_first=False)]
    yx = build(rsteps_first=True)
    if yx != minimal[0]:
        minimal.append(yx)

    flanks: List[Tuple[int, ...]] = []
    if c0 != c1:  # sidestep onto an adjacent row, run the columns there
        for dr in (1, -1):
            via = (r0 + dr) % rows if wrap else r0 + dr
            if 0 <= via < rows and via != r0:
                flanks.append(build(False, via_row=via))
    if r0 != r1:  # sidestep onto an adjacent column
        for dc in (1, -1):
            via = (c0 + dc) % cols if wrap else c0 + dc
            if 0 <= via < cols and via != c0:
                flanks.append(build(False, via_col=via))

    out: List[Tuple[int, ...]] = []
    seen = set(minimal)
    out.extend(minimal)
    for path in sorted(set(flanks) - seen, key=lambda p: (len(p), p)):
        out.append(path)
    return out


def build_outflank_tables(g: NetworkGraph, root: int = 0,
                          max_routes_per_pair: int = 10,
                          sort_by_itbs: bool = False) -> RoutingTables:
    """OutFlank tables: minimal + flanking alternatives per pair, each
    split into legal up*/down* legs at in-transit hosts.

    ``sort_by_itbs`` reorders a pair's alternatives by in-transit count
    (fewest first) as for ITB routing; the default keeps minimal paths
    first and flanks after, the OFR preference order.
    """
    grid = g.grid
    if grid is None:
        raise ValueError(
            f"outflank routing needs grid geometry, which topology "
            f"{g.name!r} does not declare")
    tree = build_spanning_tree(g, root)
    ud = orient_links(g, root, tree)
    cycler = _ItbHostCycler(g)
    routes: Dict[Tuple[int, int], Tuple[SourceRoute, ...]] = {}
    for src in g.switches():
        for dst in g.switches():
            if src == dst:
                routes[(src, dst)] = (
                    SourceRoute.single_leg(g, (src,)),)
                continue
            paths = candidate_paths(grid, src, dst)[:max_routes_per_pair]
            alts = [route_from_path(g, ud, p, cycler) for p in paths]
            if sort_by_itbs:
                alts.sort(key=lambda r: (r.num_itbs, r.switch_path))
            routes[(src, dst)] = tuple(alts)
    routes = balance_first_alternatives(g, routes)
    return RoutingTables("outflank", root, ud, routes)


register_scheme(Scheme(
    name="outflank",
    description="OutFlank-style adaptive non-minimal grid routing: "
                "XY/YX minimal paths plus lateral flanking detours, "
                "made deadlock-free via in-transit buffers "
                "(arXiv 1310.7453)",
    label=lambda policy: f"OFR-{policy.upper()}",
    build=build_outflank_tables,
    discipline="updown",
    deadlock_free=True,
    multipath=True,
    supports=lambda g: g.grid is not None,
    topology_note="grid geometry (torus, torus-express, mesh)",
))

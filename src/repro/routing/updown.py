"""Up*/down* link orientation and legal-path machinery (Autonet rules).

After the BFS spanning tree fixes switch levels, every link (tree or
not) gets an "up" end:

1. the end whose switch is **closer to the root** (smaller BFS level);
2. the end whose switch has the **lower id** when both ends are at the
   same level.

A route is *legal* when it never traverses an "up" link after a "down"
link.  This module provides:

* :class:`UpDownOrientation` -- the orientation plus legality predicates;
* :func:`legal_shortest_distances` -- single-source shortest *legal*
  distances via BFS on the (switch, phase) layered graph;
* :func:`enumerate_legal_paths` -- bounded enumeration of simple legal
  paths, used by the ``simple_routes`` reimplementation.

The layered graph has a node per (switch, phase) with phase ``UP`` (no
down-link taken yet; may still go up or down) or ``DOWN`` (a down-link
has been taken; only down-links are allowed from here on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..topology.graph import NetworkGraph
from .spanning_tree import SpanningTree, build_spanning_tree

#: phases of the layered legality graph
UP, DOWN = 0, 1


@dataclass(frozen=True)
class UpDownOrientation:
    """Link orientation derived from a spanning tree.

    ``up_end[lid]`` is the switch id of the "up" end of link ``lid``.
    """

    tree: SpanningTree
    up_end: Tuple[int, ...]

    def is_up(self, frm: int, to: int, link_id: int) -> bool:
        """True when traversing ``link_id`` from ``frm`` to ``to`` moves
        in the "up" direction (toward the up end)."""
        del frm  # direction is fully determined by the target end
        return self.up_end[link_id] == to

    def path_is_legal(self, g: NetworkGraph, path: Sequence[int]) -> bool:
        """Check the up*/down* rule for a switch sequence.

        Raises :class:`ValueError` if consecutive switches are unlinked.
        """
        gone_down = False
        for a, b in zip(path, path[1:]):
            lid = g.link_between(a, b)
            if lid is None:
                raise ValueError(f"switches {a} and {b} are not linked")
            if self.is_up(a, b, lid):
                if gone_down:
                    return False
            else:
                gone_down = True
        return True


def orient_links(g: NetworkGraph, root: int = 0,
                 tree: Optional[SpanningTree] = None) -> UpDownOrientation:
    """Assign the "up" end of every link per the Autonet rules."""
    if tree is None:
        tree = build_spanning_tree(g, root)
    up_end: List[int] = []
    for link in g.links:
        la, lb = tree.level[link.a], tree.level[link.b]
        if la < lb:
            up_end.append(link.a)
        elif lb < la:
            up_end.append(link.b)
        else:
            up_end.append(min(link.a, link.b))
    return UpDownOrientation(tree, tuple(up_end))


def legal_shortest_distances(g: NetworkGraph, ud: UpDownOrientation,
                             source: int) -> List[int]:
    """Shortest legal up*/down* distance from ``source`` to every switch.

    BFS over the layered (switch, phase) graph; the distance to a switch
    is the minimum over both phases.  All switches are reachable (the
    spanning tree itself is legal), so no -1 sentinel is needed.
    """
    INF = g.num_switches * 2 + 1
    dist = [[INF, INF] for _ in range(g.num_switches)]
    dist[source][UP] = 0
    frontier: List[Tuple[int, int]] = [(source, UP)]
    while frontier:
        nxt: List[Tuple[int, int]] = []
        for s, phase in frontier:
            d = dist[s][phase] + 1
            for nb, lid in g.neighbors(s):
                if ud.is_up(s, nb, lid):
                    if phase == UP and d < dist[nb][UP]:
                        dist[nb][UP] = d
                        nxt.append((nb, UP))
                else:
                    if d < dist[nb][DOWN]:
                        dist[nb][DOWN] = d
                        nxt.append((nb, DOWN))
        frontier = nxt
    return [min(d_up, d_down) for d_up, d_down in dist]


def legal_distances_to(g: NetworkGraph, ud: UpDownOrientation,
                       dest: int) -> List[List[int]]:
    """Per (switch, phase) minimum legal hops *to* ``dest``.

    ``result[s][phase]`` is the shortest legal continuation from switch
    ``s`` when the path so far ends in phase ``phase``; used as an
    admissible pruning heuristic by :func:`enumerate_legal_paths`.
    Unreachable states hold a large sentinel (>= 2 * num_switches).
    """
    INF = g.num_switches * 2 + 1
    dist = [[INF, INF] for _ in range(g.num_switches)]
    dist[dest][UP] = 0
    dist[dest][DOWN] = 0
    # Backward BFS: edge (s, p) -> (nb, p') in the forward graph becomes
    # (nb, p') -> (s, p) here.  Enumerate forward edges from every state
    # and relax their sources from their targets.
    frontier: List[Tuple[int, int]] = [(dest, UP), (dest, DOWN)]
    while frontier:
        nxt: List[Tuple[int, int]] = []
        for t, tphase in frontier:
            d = dist[t][tphase] + 1
            # forward edges into (t, tphase): from (s, UP) via an up link
            # (tphase must be UP), or from (s, UP/DOWN) via a down link
            # (tphase must be DOWN).
            for s, lid in g.neighbors(t):
                if ud.is_up(s, t, lid):
                    if tphase == UP and d < dist[s][UP]:
                        dist[s][UP] = d
                        nxt.append((s, UP))
                else:
                    if tphase == DOWN:
                        for sphase in (UP, DOWN):
                            if d < dist[s][sphase]:
                                dist[s][sphase] = d
                                nxt.append((s, sphase))
        frontier = nxt
    return dist


def enumerate_legal_paths(g: NetworkGraph, ud: UpDownOrientation,
                          src: int, dst: int, max_len: int,
                          max_paths: int = 32) -> List[Tuple[int, ...]]:
    """Enumerate up to ``max_paths`` simple legal paths of length <= ``max_len``.

    Depth-first with an admissible remaining-distance bound from
    :func:`legal_distances_to`, exploring neighbours in ascending switch
    id for determinism.  Paths are returned in DFS order (shortest not
    guaranteed first; callers sort as needed).
    """
    if src == dst:
        return [(src,)]
    h = legal_distances_to(g, ud, dst)
    out: List[Tuple[int, ...]] = []
    on_path = [False] * g.num_switches
    on_path[src] = True
    path = [src]

    def dfs(s: int, phase: int) -> bool:
        """Returns False when the path cap has been reached."""
        if len(out) >= max_paths:
            return False
        remaining = max_len - (len(path) - 1)
        for nb, lid in g.sorted_neighbors(s):
            if on_path[nb]:
                continue
            nphase = UP if ud.is_up(s, nb, lid) else DOWN
            if nphase == UP and phase == DOWN:
                continue  # illegal down->up transition
            if nb == dst:
                if remaining < 1:
                    continue
                out.append(tuple(path) + (dst,))
                if len(out) >= max_paths:
                    return False
                continue
            if 1 + h[nb][nphase] > remaining:
                continue  # cannot reach dst legally within the budget
            on_path[nb] = True
            path.append(nb)
            ok = dfs(nb, nphase)
            path.pop()
            on_path[nb] = False
            if not ok:
                return False
        return True

    dfs(src, UP)
    return out

"""Route-quality statistics quoted in the paper's running text.

Section 4.7.1 reports, for the 8x8 torus:

* 80 % of the UP/DOWN (simple_routes) paths are minimal, vs 100 % for ITB
  (94 % for the express torus, 100 % on CPLANT);
* average distance 4.57 links for UP/DOWN vs 4.06 for ITB;
* 0.43 in-transit buffers per message under ITB-SP and 0.54 under ITB-RR
  (uniform traffic).

:func:`route_statistics` computes all of these from a routing table so
`benchmarks/bench_route_stats.py` and EXPERIMENTS.md can compare against
the paper directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..topology.graph import NetworkGraph
from .table import RoutingTables


@dataclass(frozen=True)
class RouteStats:
    """Aggregate route quality over all ordered switch pairs (src != dst).

    Averages are host-pair weighted the way uniform traffic samples them:
    every ordered pair of distinct switches counts once (hosts are evenly
    spread, so switch-pair weighting matches host-pair weighting up to
    the negligible same-switch terms, which have zero network distance).
    """

    #: fraction of pairs whose *first* route alternative is minimal
    fraction_minimal: float
    #: average switch-link distance of the first alternative (SP traffic)
    avg_distance_sp: float
    #: average switch-link distance over all alternatives (RR traffic)
    avg_distance_rr: float
    #: average minimal (graph) distance -- lower bound for any routing
    avg_minimal_distance: float
    #: average in-transit buffers per message under the SP policy
    avg_itbs_sp: float
    #: average in-transit buffers per message under the RR policy
    avg_itbs_rr: float
    #: maximum in-transit buffers on any single route alternative
    max_itbs: int
    #: average number of alternatives per pair
    avg_alternatives: float


def route_statistics(g: NetworkGraph, tables: RoutingTables) -> RouteStats:
    """Compute :class:`RouteStats` for ``tables`` on ``g``."""
    dist_rows: List[List[int]] = g.all_pairs_distances()
    pairs = 0
    n_minimal = 0
    sum_sp = 0
    sum_rr = 0.0
    sum_min = 0
    sum_itb_sp = 0
    sum_itb_rr = 0.0
    max_itbs = 0
    sum_alts = 0
    for (src, dst), alts in tables.routes.items():
        if src == dst:
            continue
        pairs += 1
        sum_alts += len(alts)
        dmin = dist_rows[src][dst]
        sum_min += dmin
        first = alts[0]
        if first.switch_hops == dmin:
            n_minimal += 1
        sum_sp += first.switch_hops
        sum_itb_sp += first.num_itbs
        sum_rr += sum(r.switch_hops for r in alts) / len(alts)
        sum_itb_rr += sum(r.num_itbs for r in alts) / len(alts)
        max_itbs = max(max_itbs, max(r.num_itbs for r in alts))
    if pairs == 0:
        raise ValueError("network has a single switch; no pairs to analyse")
    return RouteStats(
        fraction_minimal=n_minimal / pairs,
        avg_distance_sp=sum_sp / pairs,
        avg_distance_rr=sum_rr / pairs,
        avg_minimal_distance=sum_min / pairs,
        avg_itbs_sp=sum_itb_sp / pairs,
        avg_itbs_rr=sum_itb_rr / pairs,
        max_itbs=max_itbs,
        avg_alternatives=sum_alts / pairs,
    )

"""Path-selection policies over route alternatives (Section 4.6).

The paper evaluates two policies on top of the ITB routes:

* **SP** (single path): every packet of a source-destination pair uses
  the same (first) alternative;
* **RR** (round-robin): consecutive packets of a pair cycle through all
  alternatives, spreading load over the minimal paths.

``random`` is an extension: pick a uniformly random alternative per
packet (memoryless spreading, no per-pair state in the NIC).

Policies are stateful per *host pair* -- the round-robin pointer lives in
the source NIC's routing table, exactly as the MCP would keep it.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Sequence, Tuple

from .routes import SourceRoute


class PathSelectionPolicy(ABC):
    """Strategy choosing one route among a pair's alternatives."""

    name: str = "abstract"

    #: whether :meth:`feedback` actually consumes delivery
    #: notifications -- stateless policies leave this False so callers
    #: (the runner, batch engines) can skip the per-packet callback
    #: entirely instead of invoking a no-op for every delivery
    needs_feedback: bool = False

    @abstractmethod
    def select_index(self, src_host: int, dst_host: int,
                     alternatives: Sequence[SourceRoute]) -> int:
        """Index of the alternative the next packet from ``src_host``
        to ``dst_host`` should take.

        The network stores this index on the packet
        (:attr:`~repro.sim.packet.Packet.alt_index`), so feedback can
        be attributed to the alternative even after routing tables are
        rebuilt (route *objects* are not stable identifiers)."""

    def select(self, src_host: int, dst_host: int,
               alternatives: Sequence[SourceRoute]) -> SourceRoute:
        """Pick the route for the next packet from ``src_host`` to
        ``dst_host`` (convenience wrapper around :meth:`select_index`)."""
        return alternatives[self.select_index(src_host, dst_host,
                                              alternatives)]

    def feedback(self, pkt) -> None:
        """Delivery notification (called by the network for every
        delivered packet).  Stateless policies ignore it; adaptive ones
        use the observed latency."""


class SinglePathPolicy(PathSelectionPolicy):
    """Always the first alternative (ITB-SP; also UP/DOWN's only option)."""

    name = "sp"

    def select_index(self, src_host: int, dst_host: int,
                     alternatives: Sequence[SourceRoute]) -> int:
        return 0


class RoundRobinPolicy(PathSelectionPolicy):
    """Cycle through alternatives per source-destination host pair (ITB-RR).

    The first packet of a pair starts at a pair-dependent offset
    (``staggered_start``, default on) rather than always at alternative
    0: with 512 hosts and uniform traffic most pairs exchange only a
    handful of messages per run, and a zero start would collapse RR into
    SP.  The stagger reproduces the paper's reported behaviour (0.54
    in-transit buffers per message for RR on the torus, i.e. the mean
    over all alternatives) while remaining strictly round-robin per pair.
    """

    name = "rr"

    def __init__(self, staggered_start: bool = True) -> None:
        self._next: Dict[Tuple[int, int], int] = {}
        self._staggered = staggered_start

    def _start_index(self, src_host: int, dst_host: int) -> int:
        if not self._staggered:
            return 0
        # deterministic integer mix (Python's hash() is salted per run)
        x = src_host * 2654435761 ^ dst_host * 2246822519
        x ^= x >> 13
        return x & 0x7FFFFFFF

    def select_index(self, src_host: int, dst_host: int,
                     alternatives: Sequence[SourceRoute]) -> int:
        key = (src_host, dst_host)
        i = self._next.get(key)
        if i is None:
            # first packet of the pair: _start_index inlined (this is
            # the common case under uniform traffic -- most pairs send
            # once -- and sits on every engine's admission hot path)
            if self._staggered:
                x = src_host * 2654435761 ^ dst_host * 2246822519
                x ^= x >> 13
                i = x & 0x7FFFFFFF
            else:
                i = 0
        i %= len(alternatives)
        self._next[key] = i + 1
        return i


class RandomPolicy(PathSelectionPolicy):
    """Uniformly random alternative per packet (extension policy)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select_index(self, src_host: int, dst_host: int,
                     alternatives: Sequence[SourceRoute]) -> int:
        return self._rng.randrange(len(alternatives))


class AdaptivePolicy(PathSelectionPolicy):
    """Latency-adaptive selection at the source host (extension).

    The paper's future work proposes "new route selection algorithms
    that implement some adaptivity at the source host".  This policy is
    one such algorithm: the NIC keeps, per source-destination pair and
    per alternative, an exponentially weighted moving average of the
    network latency of delivered messages (feedback a Myrinet MCP could
    obtain from software-level acknowledgements), and routes each new
    message over the alternative with the lowest estimate.  With
    probability ``epsilon`` it explores a uniformly random alternative
    so stale estimates recover; unobserved alternatives are always
    preferred over observed ones (optimistic initialisation).
    """

    name = "adaptive"
    needs_feedback = True

    def __init__(self, seed: int = 0, epsilon: float = 0.1,
                 alpha: float = 0.25) -> None:
        if not (0.0 <= epsilon <= 1.0):
            raise ValueError("epsilon must be in [0, 1]")
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        self._rng = random.Random(seed)
        self.epsilon = epsilon
        self.alpha = alpha
        #: (src, dst) -> per-alternative latency EWMA (ps); None = never
        #: observed
        self._ewma: Dict[Tuple[int, int], list] = {}

    def register(self, src_host: int, dst_host: int,
                 alternatives: Sequence[SourceRoute]) -> list:
        """Initialise (or fetch) the pair's estimate table.

        Called implicitly by :meth:`select_index`; feedback for a pair
        that was never selected is ignored, so explicit registration
        only matters when feeding observations from outside a
        simulation.
        """
        key = (src_host, dst_host)
        ewma = self._ewma.get(key)
        if ewma is None or len(ewma) != len(alternatives):
            ewma = self._ewma[key] = [None] * len(alternatives)
        return ewma

    def select_index(self, src_host: int, dst_host: int,
                     alternatives: Sequence[SourceRoute]) -> int:
        ewma = self.register(src_host, dst_host, alternatives)
        if self._rng.random() < self.epsilon:
            return self._rng.randrange(len(alternatives))
        # optimistic: any never-tried alternative first, else lowest EWMA
        return min(range(len(alternatives)),
                   key=lambda i: (ewma[i] is not None, ewma[i] or 0))

    def feedback(self, pkt) -> None:
        """Attribute the delivered packet's latency to the alternative
        it travelled, identified by :attr:`Packet.alt_index` (stable
        across routing-table rebuilds, unlike route object identity)."""
        ewma = self._ewma.get((pkt.src_host, pkt.dst_host))
        if ewma is None:
            return
        i = pkt.alt_index
        if not 0 <= i < len(ewma):
            return
        lat = pkt.network_latency_ps()
        ewma[i] = (lat if ewma[i] is None
                   else (1 - self.alpha) * ewma[i] + self.alpha * lat)


def make_policy(name: str, seed: int = 0) -> PathSelectionPolicy:
    """Instantiate a policy by its config name
    (``sp``/``rr``/``random``/``adaptive``)."""
    if name == "sp":
        return SinglePathPolicy()
    if name == "rr":
        return RoundRobinPolicy()
    if name == "random":
        return RandomPolicy(seed)
    if name == "adaptive":
        return AdaptivePolicy(seed)
    raise ValueError(f"unknown path selection policy {name!r}")

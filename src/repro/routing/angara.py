"""Angara-style optimized up*/down* routing (arXiv 2110.00851).

The Angara interconnect runs graph-based up*/down* routing and gets a
measurable throughput win over the textbook construction from two
heuristics that slot straight into our spanning-tree build:

1. **Root selection.**  The BFS root is not "switch 0" but a switch of
   minimum *eccentricity* (a graph centre), with ties broken toward the
   highest degree and then the lowest id.  A central root halves the
   worst-case up-phase length and spreads tree levels evenly, so fewer
   pairs are forced through long up*/down* detours.

2. **Path ordering.**  Links between same-level switches get their "up"
   end from a congestion-aware total order -- higher-degree switches
   rank *higher* (closer to the root) -- instead of the arbitrary
   lower-id rule.  Well-connected switches can fan traffic out over
   many down-links, so pointing horizontal links at them relieves the
   poorly-connected ones that would otherwise concentrate turns.

Both heuristics only change which orientation is derived; the route
enumeration, balancing and legality machinery is the shared up*/down*
stack, so the scheme is deadlock-free by the same argument as the
baseline and registers with the ``"updown"`` discipline.

Registered as ``"updown-opt"``.  The ``root`` argument of the builder
is a *hint* that the eccentricity heuristic overrides; tables stay
deterministic for a fixed (graph, scheme, root) because the selection
itself is deterministic.
"""

from __future__ import annotations

from typing import List, Tuple

from ..topology.graph import NetworkGraph
from .routes import SourceRoute
from .schemes import Scheme, register_scheme
from .simple_routes import compute_simple_routes
from .spanning_tree import SpanningTree, build_spanning_tree
from .table import RoutingTables
from .updown import UpDownOrientation


def select_root(g: NetworkGraph) -> int:
    """A graph centre: minimum eccentricity, then maximum degree, then
    lowest id -- all deterministic functions of the graph."""
    best = 0
    best_key: Tuple[int, int, int] = (g.num_switches + 1, 0, 0)
    for s in g.switches():
        ecc = max(g.shortest_distances(s))
        key = (ecc, -g.degree(s), s)
        if key < best_key:
            best_key = key
            best = s
    return best


def orient_links_ordered(g: NetworkGraph,
                         tree: SpanningTree) -> UpDownOrientation:
    """Orientation with the degree-aware same-level order.

    Different-level links keep the Autonet rule (up end toward the
    root); same-level links point "up" at the endpoint ranking higher
    under ``(-degree, id)``.  The relation is a strict total order on
    switches, so up-links still form a DAG ordered by
    ``(level, -degree, id)`` and the deadlock-freedom argument is
    unchanged.
    """
    level = tree.level
    up_end: List[int] = []
    for link in g.links:
        la, lb = level[link.a], level[link.b]
        if la != lb:
            up_end.append(link.a if la < lb else link.b)
        else:
            ka = (-g.degree(link.a), link.a)
            kb = (-g.degree(link.b), link.b)
            up_end.append(link.a if ka < kb else link.b)
    return UpDownOrientation(tree, tuple(up_end))


def build_updown_opt_tables(g: NetworkGraph, root: int = 0,
                            max_routes_per_pair: int = 10,
                            sort_by_itbs: bool = False) -> RoutingTables:
    """Optimized up*/down* tables: centre root + ordered orientation.

    Route selection is the same weight-balanced ``simple_routes`` pass
    as the baseline, run on the better orientation; one route per pair.
    """
    del root, max_routes_per_pair, sort_by_itbs  # root is heuristic-chosen
    centre = select_root(g)
    tree = build_spanning_tree(g, centre)
    ud = orient_links_ordered(g, tree)
    paths = compute_simple_routes(g, ud)
    routes = {pair: (SourceRoute.single_leg(g, path),)
              for pair, path in paths.items()}
    return RoutingTables("updown-opt", centre, ud, routes)


register_scheme(Scheme(
    name="updown-opt",
    description="Angara-style optimized up*/down*: eccentricity-centred "
                "root + degree-ordered orientation (arXiv 2110.00851)",
    label=lambda policy: "UD-OPT",
    build=build_updown_opt_tables,
    discipline="updown",
    deadlock_free=True,
    multipath=False,
))

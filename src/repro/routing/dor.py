"""Dimension-order (XY) routing for 2-D meshes and tori (extension).

The textbook wormhole baseline: route fully along the X dimension, then
fully along Y.  On a **mesh** the X->Y turn restriction removes every
cyclic channel dependency, so DOR is minimal *and* deadlock-free with
no virtual channels -- a useful third comparator next to up*/down* and
ITB routing.  On a **torus** the wraparound links close dependency
cycles within each ring, and Myrinet has no virtual channels to break
them: DOR there is a *deliberately unsafe* configuration which the
deadlock-demonstration benches run under the watchdog.

Routes are single-leg (no in-transit hosts) and exactly one per pair,
so they slot directly into :class:`~repro.routing.table.RoutingTables`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..topology.graph import NetworkGraph
from ..topology.torus import switch_coords, switch_id
from .routes import SourceRoute
from .schemes import Scheme, register_scheme
from .spanning_tree import build_spanning_tree
from .table import RoutingTables
from .updown import orient_links


def _ring_step(frm: int, to: int, size: int, wrap: bool) -> int:
    """Step direction (+1/-1) along one dimension toward ``to``.

    With ``wrap`` the shorter way around the ring is taken (ties toward
    +1); without, the sign of the difference.
    """
    if not wrap:
        return 1 if to > frm else -1
    fwd = (to - frm) % size
    return 1 if fwd <= size - fwd else -1


def dor_path(g: NetworkGraph, src: int, dst: int, rows: int, cols: int,
             wrap: bool) -> Tuple[int, ...]:
    """The XY dimension-order switch path from ``src`` to ``dst``."""
    r0, c0 = switch_coords(src, cols)
    r1, c1 = switch_coords(dst, cols)
    path = [src]
    c = c0
    while c != c1:
        c = (c + _ring_step(c, c1, cols, wrap)) % cols
        path.append(switch_id(r0, c, cols))
    r = r0
    while r != r1:
        r = (r + _ring_step(r, r1, rows, wrap)) % rows
        path.append(switch_id(r, c1, cols))
    return tuple(path)


def compute_dor_tables(g: NetworkGraph, rows: int, cols: int,
                       wrap: bool = False) -> RoutingTables:
    """Dimension-order routing tables for a ``rows`` x ``cols`` grid.

    ``wrap=False`` (mesh): minimal and deadlock-free.  ``wrap=True``
    (torus): minimal but **not** deadlock-free -- only use behind the
    simulator's deadlock watchdog.
    """
    if rows * cols != g.num_switches:
        raise ValueError(f"grid {rows}x{cols} does not match "
                         f"{g.num_switches} switches")
    tree = build_spanning_tree(g, 0)
    ud = orient_links(g, 0, tree)   # orientation kept for diagnostics
    routes: Dict[Tuple[int, int], Tuple[SourceRoute, ...]] = {}
    for src in g.switches():
        for dst in g.switches():
            path = dor_path(g, src, dst, rows, cols, wrap)
            routes[(src, dst)] = (SourceRoute.single_leg(g, path),)
    return RoutingTables("dor", 0, ud, routes)


def _build_dor_tables(g: NetworkGraph, root: int = 0,
                      max_routes_per_pair: int = 10,
                      sort_by_itbs: bool = False) -> RoutingTables:
    """Registry builder: DOR on the graph's declared grid geometry.

    Only mesh geometry is accepted through the registry (the scheme's
    ``supports`` predicate): with wraparound links DOR deadlocks, and
    the deliberately-unsafe torus configuration stays reachable only
    through :func:`compute_dor_tables` directly.
    """
    del root, max_routes_per_pair, sort_by_itbs  # single fixed path
    grid = g.grid
    if grid is None or grid.wrap:
        raise ValueError(
            f"dor routing needs mesh grid geometry, which topology "
            f"{g.name!r} does not declare")
    return compute_dor_tables(g, grid.rows, grid.cols, wrap=False)


register_scheme(Scheme(
    name="dor",
    description="dimension-order (XY) routing: minimal, single-path, "
                "deadlock-free on meshes by the turn-model argument",
    label=lambda policy: "DOR",
    build=_build_dor_tables,
    discipline="dimension-order",
    deadlock_free=True,
    multipath=False,
    supports=lambda g: g.grid is not None and not g.grid.wrap,
    topology_note="mesh grid geometry (no wraparound)",
))

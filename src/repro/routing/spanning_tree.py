"""BFS spanning tree used as the substrate of up*/down* routing.

Up*/down* (Autonet [13]) first computes a breadth-first spanning tree of
the switch graph.  The tree only fixes each switch's *level* (BFS depth)
-- the up/down orientation of every link, including non-tree links, is
then derived in :mod:`repro.routing.updown` from levels and switch ids.

The paper's figures place the root at the "top leftmost switch", i.e.
switch 0 in our numbering, so ``root=0`` is the default; the root is a
parameter so the root-placement ablation can move it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..topology.graph import NetworkGraph


@dataclass(frozen=True)
class SpanningTree:
    """Levels and parents of the BFS spanning tree rooted at ``root``."""

    root: int
    level: tuple
    parent: tuple  # parent switch id, -1 for the root

    def depth(self) -> int:
        """Maximum BFS level."""
        return max(self.level)


def build_spanning_tree(g: NetworkGraph, root: int = 0) -> SpanningTree:
    """Breadth-first spanning tree of the switch graph.

    Neighbour exploration follows adjacency order with ties broken toward
    the lower switch id, making the tree deterministic for a given graph.
    """
    if not (0 <= root < g.num_switches):
        raise ValueError(f"root {root} out of range")
    level: List[int] = [-1] * g.num_switches
    parent: List[int] = [-1] * g.num_switches
    level[root] = 0
    frontier = [root]
    while frontier:
        nxt: List[int] = []
        for s in sorted(frontier):
            for nb, _lid in sorted(g.neighbors(s)):
                if level[nb] < 0:
                    level[nb] = level[s] + 1
                    parent[nb] = s
                    nxt.append(nb)
        frontier = nxt
    if any(lv < 0 for lv in level):
        raise ValueError("switch graph is not connected")
    return SpanningTree(root, tuple(level), tuple(parent))

"""Routing-scheme registry: table builders selected by name.

Mirrors :mod:`repro.sim.engines`: every routing scheme registers itself
under a short name together with a **capability declaration** --
which graphs it supports, whether its tables are deadlock-free by
construction, and which legality *discipline* its routes obey -- and
everything outside :mod:`repro.routing` (config validation, the
experiment runner, the CLI, the tournament) dispatches through this
registry instead of hard-coding scheme names.  Registering a fifth
scheme is one :func:`register_scheme` call::

    from repro.routing.schemes import Scheme, register_scheme

    register_scheme(Scheme(
        name="my-scheme",
        description="...",
        label=lambda policy: "MY",
        build=my_table_builder,            # (g, root, max_routes, sort)
        discipline="updown",
        deadlock_free=True,
        multipath=False,
        supports=lambda g: True,
    ))

after which ``SimConfig(routing="my-scheme")``, ``repro run``,
``repro tournament`` and the property suite all pick it up.

Disciplines
-----------

A scheme's ``discipline`` names the executable deadlock-freedom
argument its routes are checked against by
:meth:`~repro.routing.table.RoutingTables.validate`:

* ``"updown"`` -- every leg individually satisfies the up*/down* rule
  of the table's orientation (legs joined at in-transit hosts each
  start a fresh dependency chain, Section 3 of the paper);
* ``"dimension-order"`` -- every route is a single leg that crosses
  grid dimensions in X-then-Y order, each dimension monotonically
  (the classic turn-model argument; deadlock-free on meshes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..topology.graph import NetworkGraph
from .itb import build_itb_routes
from .routes import SourceRoute
from .simple_routes import compute_simple_routes
from .spanning_tree import build_spanning_tree
from .table import RoutingTables
from .updown import orient_links

#: builder signature: (graph, root, max_routes_per_pair, sort_by_itbs)
TableBuilder = Callable[[NetworkGraph, int, int, bool], RoutingTables]

#: the legality disciplines validate() knows how to check
DISCIPLINES = ("updown", "dimension-order")


@dataclass(frozen=True)
class Scheme:
    """One registered routing scheme and its capability declaration."""

    name: str
    #: one-line description (shown by ``repro schemes`` / docs)
    description: str
    #: display label as a function of the path-selection policy
    label: Callable[[str], str]
    build: TableBuilder
    #: legality discipline of every produced route (see module docs)
    discipline: str
    #: deadlock-free by construction on every supported graph?
    deadlock_free: bool
    #: does the scheme produce >1 alternative per pair (so RR/adaptive
    #: selection is meaningful)?
    multipath: bool
    #: graph predicate: can tables be built for this network at all?
    supports: Callable[[NetworkGraph], bool] = field(default=lambda g: True)
    #: human-readable supported-topology note for docs/errors
    topology_note: str = "any connected switch graph"

    def __post_init__(self) -> None:
        if self.discipline not in DISCIPLINES:
            raise ValueError(
                f"scheme {self.name!r} declares unknown discipline "
                f"{self.discipline!r}; known: {', '.join(DISCIPLINES)}")


_SCHEMES: Dict[str, Scheme] = {}


def register_scheme(scheme: Scheme) -> Scheme:
    """Register ``scheme``; rejects duplicate names."""
    if scheme.name in _SCHEMES:
        raise ValueError(f"scheme {scheme.name!r} is already registered")
    _SCHEMES[scheme.name] = scheme
    return scheme


def unregister_scheme(name: str) -> None:
    """Remove a registered scheme (tests register throwaway schemes)."""
    _SCHEMES.pop(name, None)


def available_schemes() -> Tuple[str, ...]:
    """Registered scheme names, sorted."""
    return tuple(sorted(_SCHEMES))


#: alias matching the engine registry's naming
list_schemes = available_schemes


def get_scheme(name: str) -> Scheme:
    """The scheme registered under ``name``."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing scheme {name!r}; available: "
            f"{', '.join(available_schemes()) or 'none'}") from None


def scheme_label(name: str, policy: str) -> str:
    """Display label of a (scheme, policy) combination."""
    return get_scheme(name).label(policy)


def supported_schemes(g: NetworkGraph) -> Tuple[str, ...]:
    """Names of every registered scheme that can route ``g``, sorted."""
    return tuple(name for name in available_schemes()
                 if _SCHEMES[name].supports(g))


def make_tables(g: NetworkGraph, scheme: str, root: int = 0,
                max_routes_per_pair: int = 10,
                sort_by_itbs: bool = False) -> RoutingTables:
    """Build routing tables for ``g`` under the scheme named ``scheme``.

    The registry-level entry point behind
    :func:`repro.routing.table.compute_tables`.  Raises
    :class:`ValueError` with the supported-topology note when the
    scheme declares it cannot route this graph (e.g. a grid-geometry
    scheme handed an irregular network).
    """
    s = get_scheme(scheme)
    if not s.supports(g):
        raise ValueError(
            f"scheme {scheme!r} does not support topology {g.name!r} "
            f"(requires: {s.topology_note})")
    return s.build(g, root, max_routes_per_pair, sort_by_itbs)


# -- discipline checks -------------------------------------------------------


def check_updown_discipline(tables: RoutingTables, g: NetworkGraph) -> None:
    """Assert every leg of every route is up*/down*-legal.

    Legs joined at in-transit hosts each start a fresh up*/down* phase,
    so per-leg legality is the whole deadlock-freedom argument.
    """
    for (src, dst), alts in tables.routes.items():
        for route in alts:
            for leg in route.legs:
                assert tables.orientation.path_is_legal(g, leg.switches), (
                    f"illegal leg {leg.switches} in route {src}->{dst}")


def check_dimension_order_discipline(tables: RoutingTables,
                                     g: NetworkGraph) -> None:
    """Assert every route is one leg moving X-then-Y, each monotonically.

    The turn-model argument: forbidding Y->X turns (and reversals
    within a dimension) leaves no cyclic channel dependency on a mesh.
    """
    grid = g.grid
    assert grid is not None, (
        "dimension-order discipline needs grid geometry on the graph")

    def step(a: int, b: int) -> Tuple[int, int]:
        """(dimension, signed direction) of one hop, wrap-aware."""
        (ra, ca), (rb, cb) = grid.coords(a), grid.coords(b)
        if ra == rb:
            d = (cb - ca) % grid.cols
            return 0, (1 if d == 1 else -1)
        d = (rb - ra) % grid.rows
        return 1, (1 if d == 1 else -1)

    for (src, dst), alts in tables.routes.items():
        for route in alts:
            assert len(route.legs) == 1, (
                f"dimension-order route {src}->{dst} must be single-leg")
            path = route.legs[0].switches
            last_dim = -1
            dim_dir: Dict[int, int] = {}
            for a, b in zip(path, path[1:]):
                dim, sign = step(a, b)
                assert dim >= last_dim, (
                    f"route {src}->{dst} turns back to dimension {dim} "
                    f"after dimension {last_dim}: {path}")
                assert dim_dir.setdefault(dim, sign) == sign, (
                    f"route {src}->{dst} reverses direction in "
                    f"dimension {dim}: {path}")
                last_dim = dim


_DISCIPLINE_CHECKS: Dict[str, Callable[[RoutingTables, NetworkGraph], None]] \
    = {
        "updown": check_updown_discipline,
        "dimension-order": check_dimension_order_discipline,
    }


def check_discipline(tables: RoutingTables, g: NetworkGraph) -> None:
    """Run the deadlock-discipline check declared by the tables' scheme.

    Tables whose scheme is not registered (tests build raw
    :class:`RoutingTables` directly) fall back to the up*/down* check,
    the discipline of every paper scheme.
    """
    scheme = _SCHEMES.get(tables.scheme)
    discipline = scheme.discipline if scheme is not None else "updown"
    _DISCIPLINE_CHECKS[discipline](tables, g)


# -- built-in schemes (the paper's two) --------------------------------------


def _grid_supported(g: NetworkGraph) -> bool:
    return g.grid is not None


def _mesh_grid_supported(g: NetworkGraph) -> bool:
    return g.grid is not None and not g.grid.wrap


def build_updown_tables(g: NetworkGraph, root: int = 0,
                        max_routes_per_pair: int = 10,
                        sort_by_itbs: bool = False) -> RoutingTables:
    """The UP/DOWN baseline: one balanced legal route per pair."""
    del max_routes_per_pair, sort_by_itbs  # single fixed path per pair
    tree = build_spanning_tree(g, root)
    ud = orient_links(g, root, tree)
    paths = compute_simple_routes(g, ud)
    routes = {pair: (SourceRoute.single_leg(g, path),)
              for pair, path in paths.items()}
    return RoutingTables("updown", root, ud, routes)


def build_itb_tables(g: NetworkGraph, root: int = 0,
                     max_routes_per_pair: int = 10,
                     sort_by_itbs: bool = False) -> RoutingTables:
    """Minimal routing with in-transit buffers (the paper's scheme)."""
    tree = build_spanning_tree(g, root)
    ud = orient_links(g, root, tree)
    routes = build_itb_routes(g, ud, max_routes_per_pair, sort_by_itbs)
    return RoutingTables("itb", root, ud, routes)


register_scheme(Scheme(
    name="updown",
    description="up*/down* baseline: one balanced legal route per pair "
                "(Myricom simple_routes)",
    label=lambda policy: "UP/DOWN",
    build=build_updown_tables,
    discipline="updown",
    deadlock_free=True,
    multipath=False,
))

register_scheme(Scheme(
    name="itb",
    description="minimal routing with in-transit buffers: up to 10 "
                "minimal alternatives split into legal legs (the paper)",
    label=lambda policy: f"ITB-{policy.upper()}",
    build=build_itb_tables,
    discipline="updown",
    deadlock_free=True,
    multipath=True,
))


def describe_schemes(g: Optional[NetworkGraph] = None
                     ) -> Sequence[Tuple[str, Scheme]]:
    """(name, scheme) pairs, sorted; filtered to ``g``'s supported set
    when a graph is given.  Convenience for CLI/doc rendering."""
    names = supported_schemes(g) if g is not None else available_schemes()
    return [(name, _SCHEMES[name]) for name in names]

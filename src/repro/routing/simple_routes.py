"""Reimplementation of Myricom's ``simple_routes`` route selection.

The paper's UP/DOWN baseline uses the routes produced by the
``simple_routes`` program shipped with GM (Section 4.5): one valid
up*/down* path per source-destination pair, selected so as to *balance
traffic* across links via link weights -- possibly choosing a
non-minimal up*/down* path over an available minimal one when the
minimal one is hot.

Our implementation follows that description:

1. for every ordered switch pair, enumerate candidate legal up*/down*
   paths with length up to the shortest legal distance plus
   ``length_slack`` (bounded enumeration, see
   :func:`repro.routing.updown.enumerate_legal_paths`);
2. process pairs in a deterministic order and greedily pick, per pair,
   the candidate minimising ``(total link weight, length, path)``;
3. add one unit of weight to every link of the chosen path (each pair
   carries the same offered load under the paper's traffic model).

The greedy weighted selection reproduces the two properties the paper
relies on: routes concentrate around the spanning-tree root (the
up*/down* structure forces this) while being as spread as the rule
allows.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..topology.graph import NetworkGraph
from .updown import UpDownOrientation, enumerate_legal_paths, legal_shortest_distances


def compute_simple_routes(g: NetworkGraph, ud: UpDownOrientation,
                          length_slack: int = 1,
                          max_candidates: int = 32,
                          prefer_minimal: bool = True,
                          ) -> Dict[Tuple[int, int], Tuple[int, ...]]:
    """One balanced legal up*/down* path per ordered switch pair.

    Returns a dict ``(src, dst) -> switch path`` covering every ordered
    pair of distinct switches (plus the trivial ``(s, s) -> (s,)``
    entries, which hosts sharing a switch use).

    With ``prefer_minimal`` (default) the shortest legal candidates win
    and the link weights only break ties among them; this reproduces the
    minimal-path fractions the paper reports for simple_routes (80 % on
    the 8x8 torus, 94 % on the express torus -- exactly the fraction of
    pairs that have a legal minimal path at all).  ``prefer_minimal=
    False`` puts accumulated weight first, allowing longer paths purely
    for balance (the behaviour the paper alludes to with "it may happen
    that the simple_routes program selects a non-minimal up*/down*
    path"); the ablation benches compare both.
    """
    if length_slack < 0:
        raise ValueError("length_slack must be >= 0")
    weight = [0] * g.num_links
    routes: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    legal_dist = [legal_shortest_distances(g, ud, s) for s in g.switches()]

    # Deterministic pair order.  Interleaving by destination (rather than
    # iterating all destinations of switch 0 first) avoids systematically
    # biasing early, low-weight picks toward low-id sources.
    pairs = sorted(((src, dst) for src in g.switches() for dst in g.switches()
                    if src != dst),
                   key=lambda p: ((p[0] + p[1]) % g.num_switches, p[0], p[1]))

    for src, dst in pairs:
        # shortest legal candidates first (the bounded DFS with slack
        # may otherwise hit its cap on slack-length paths only), then
        # longer ones for balancing diversity
        shortest = enumerate_legal_paths(g, ud, src, dst,
                                         legal_dist[src][dst],
                                         max_paths=max_candidates)
        cands = list(shortest)
        if length_slack > 0:
            seen = set(cands)
            extra = enumerate_legal_paths(
                g, ud, src, dst, legal_dist[src][dst] + length_slack,
                max_paths=max_candidates)
            cands.extend(p for p in extra if p not in seen)
        if not cands:  # cannot happen on a connected graph
            raise RuntimeError(f"no legal up*/down* path {src}->{dst}")
        best = None
        best_key = None
        for path in cands:
            w = 0
            for a, b in zip(path, path[1:]):
                w += weight[g.link_between(a, b)]  # type: ignore[index]
            key = ((len(path), w, path) if prefer_minimal
                   else (w, len(path), path))
            if best_key is None or key < best_key:
                best_key = key
                best = path
        assert best is not None
        routes[(src, dst)] = best
        for a, b in zip(best, best[1:]):
            weight[g.link_between(a, b)] += 1  # type: ignore[index]

    for s in g.switches():
        routes[(s, s)] = (s,)
    return routes

"""Source-route representation.

A Myrinet source route is the ordered list of output-port selections the
packet header carries.  For our purposes a route between two *switches*
is a sequence of :class:`RouteLeg` objects:

* a plain up*/down* route is a single leg;
* an in-transit-buffer route has one leg per deadlock-free sub-path, with
  an **in-transit host** between consecutive legs where the packet is
  ejected and re-injected (the ITB mark of Section 3).

Routes are computed at switch granularity (all hosts of a switch share
the same switch-level paths); the NIC layer prepends/appends the host
cables at simulation time.

Legs store both the switch sequence and the link ids so that the
simulator can map hops onto directed channels without re-deriving them,
and so analysis code can attribute utilisation to physical cables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..topology.graph import NetworkGraph


@dataclass(frozen=True)
class RouteLeg:
    """One deadlock-free sub-path: ``switches[i] -> switches[i+1]`` over
    ``links[i]``.  A leg with a single switch and no links is valid (the
    source and target of the leg share a switch)."""

    switches: Tuple[int, ...]
    links: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.switches:
            raise ValueError("a leg must contain at least one switch")
        if len(self.links) != len(self.switches) - 1:
            raise ValueError(
                f"leg with {len(self.switches)} switches needs "
                f"{len(self.switches) - 1} links, got {len(self.links)}")

    @property
    def hops(self) -> int:
        """Number of inter-switch cables crossed."""
        return len(self.links)

    @property
    def start(self) -> int:
        return self.switches[0]

    @property
    def end(self) -> int:
        return self.switches[-1]

    @staticmethod
    def from_switch_path(g: NetworkGraph, path: Tuple[int, ...]) -> "RouteLeg":
        """Build a leg from a switch sequence, resolving link ids."""
        links = []
        for a, b in zip(path, path[1:]):
            lid = g.link_between(a, b)
            if lid is None:
                raise ValueError(f"switches {a} and {b} are not linked")
            links.append(lid)
        return RouteLeg(tuple(path), tuple(links))


@dataclass(frozen=True)
class SourceRoute:
    """A complete switch-to-switch route, possibly via in-transit hosts.

    ``itb_hosts[i]`` is the host where the packet is ejected between
    ``legs[i]`` and ``legs[i+1]``; it must be attached to
    ``legs[i].end == legs[i+1].start``.
    """

    legs: Tuple[RouteLeg, ...]
    itb_hosts: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.legs:
            raise ValueError("a route needs at least one leg")
        if len(self.itb_hosts) != len(self.legs) - 1:
            raise ValueError(
                f"{len(self.legs)} legs need {len(self.legs) - 1} "
                f"in-transit hosts, got {len(self.itb_hosts)}")
        for prev, nxt in zip(self.legs, self.legs[1:]):
            if prev.end != nxt.start:
                raise ValueError(
                    f"legs do not chain: {prev.end} != {nxt.start}")

    @property
    def src(self) -> int:
        return self.legs[0].start

    @property
    def dst(self) -> int:
        return self.legs[-1].end

    @property
    def num_itbs(self) -> int:
        """Number of in-transit buffer hops (ejection/re-injection points)."""
        return len(self.itb_hosts)

    @property
    def switch_hops(self) -> int:
        """Total inter-switch cables crossed, summed over legs."""
        return sum(leg.hops for leg in self.legs)

    @property
    def switch_path(self) -> Tuple[int, ...]:
        """Flattened switch sequence (in-transit switches appear once)."""
        path = list(self.legs[0].switches)
        for leg in self.legs[1:]:
            path.extend(leg.switches[1:])
        return tuple(path)

    def iter_links(self) -> Iterator[int]:
        """All link ids crossed, in order."""
        for leg in self.legs:
            yield from leg.links

    @staticmethod
    def single_leg(g: NetworkGraph, path: Tuple[int, ...]) -> "SourceRoute":
        """Convenience: a route that is one plain up*/down* path."""
        return SourceRoute((RouteLeg.from_switch_path(g, path),))

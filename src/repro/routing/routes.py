"""Source-route representation.

A Myrinet source route is the ordered list of output-port selections the
packet header carries.  For our purposes a route between two *switches*
is a sequence of :class:`RouteLeg` objects:

* a plain up*/down* route is a single leg;
* an in-transit-buffer route has one leg per deadlock-free sub-path, with
  an **in-transit host** between consecutive legs where the packet is
  ejected and re-injected (the ITB mark of Section 3).

Routes are computed at switch granularity (all hosts of a switch share
the same switch-level paths); the NIC layer prepends/appends the host
cables at simulation time.

Legs store both the switch sequence and the link ids so that the
simulator can map hops onto directed channels without re-deriving them,
and so analysis code can attribute utilisation to physical cables.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..topology.graph import NetworkGraph


class RouteLeg:
    """One deadlock-free sub-path: ``switches[i] -> switches[i+1]`` over
    ``links[i]``.  A leg with a single switch and no links is valid (the
    source and target of the leg share a switch).

    Legs are value objects: treat them as immutable once built -- the
    routing tables share them across runs, and the simulators stash
    derived data (``_dir_hops``) on them.  They used to be frozen
    dataclasses; plain ``__slots__`` classes construct several times
    faster, which matters because a table build creates tens of
    thousands of them.
    """

    __slots__ = ("switches", "links", "_dir_hops")

    def __init__(self, switches: Tuple[int, ...],
                 links: Tuple[int, ...]) -> None:
        if not switches:
            raise ValueError("a leg must contain at least one switch")
        if len(links) != len(switches) - 1:
            raise ValueError(
                f"leg with {len(switches)} switches needs "
                f"{len(switches) - 1} links, got {len(links)}")
        self.switches = switches
        self.links = links

    def __eq__(self, other: object) -> bool:
        if other.__class__ is RouteLeg:
            return (self.switches == other.switches
                    and self.links == other.links)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.switches, self.links))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RouteLeg(switches={self.switches!r}, links={self.links!r})"

    @property
    def hops(self) -> int:
        """Number of inter-switch cables crossed."""
        return len(self.links)

    @property
    def start(self) -> int:
        return self.switches[0]

    @property
    def end(self) -> int:
        return self.switches[-1]

    @staticmethod
    def from_switch_path(g: NetworkGraph, path: Tuple[int, ...]) -> "RouteLeg":
        """Build a leg from a switch sequence, resolving link ids."""
        return RouteLeg(tuple(path), g.path_links(path))


class SourceRoute:
    """A complete switch-to-switch route, possibly via in-transit hosts.

    ``itb_hosts[i]`` is the host where the packet is ejected between
    ``legs[i]`` and ``legs[i+1]``; it must be attached to
    ``legs[i].end == legs[i+1].start``.

    Value object like :class:`RouteLeg`: treat as immutable; the
    ``_leg_overheads`` / ``_link_ids`` slots hold lazily computed data
    shared by every packet following the route.
    """

    __slots__ = ("legs", "itb_hosts", "_leg_overheads", "_link_ids")

    def __init__(self, legs: Tuple[RouteLeg, ...],
                 itb_hosts: Tuple[int, ...] = ()) -> None:
        if not legs:
            raise ValueError("a route needs at least one leg")
        if len(itb_hosts) != len(legs) - 1:
            raise ValueError(
                f"{len(legs)} legs need {len(legs) - 1} "
                f"in-transit hosts, got {len(itb_hosts)}")
        prev = legs[0]
        for nxt in legs[1:]:
            if prev.end != nxt.start:
                raise ValueError(
                    f"legs do not chain: {prev.end} != {nxt.start}")
            prev = nxt
        self.legs = legs
        self.itb_hosts = itb_hosts

    def __eq__(self, other: object) -> bool:
        if other.__class__ is SourceRoute:
            return (self.legs == other.legs
                    and self.itb_hosts == other.itb_hosts)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.legs, self.itb_hosts))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SourceRoute(legs={self.legs!r}, "
                f"itb_hosts={self.itb_hosts!r})")

    @property
    def src(self) -> int:
        return self.legs[0].start

    @property
    def dst(self) -> int:
        return self.legs[-1].end

    @property
    def num_itbs(self) -> int:
        """Number of in-transit buffer hops (ejection/re-injection points)."""
        return len(self.itb_hosts)

    @property
    def switch_hops(self) -> int:
        """Total inter-switch cables crossed, summed over legs."""
        return sum(leg.hops for leg in self.legs)

    @property
    def switch_path(self) -> Tuple[int, ...]:
        """Flattened switch sequence (in-transit switches appear once)."""
        path = list(self.legs[0].switches)
        for leg in self.legs[1:]:
            path.extend(leg.switches[1:])
        return tuple(path)

    @property
    def link_ids(self) -> Tuple[int, ...]:
        """All link ids crossed, in order (computed once, then cached)."""
        try:
            return self._link_ids
        except AttributeError:
            out = tuple(l for leg in self.legs for l in leg.links)
            self._link_ids = out
            return out

    def iter_links(self) -> Iterator[int]:
        """All link ids crossed, in order."""
        for leg in self.legs:
            yield from leg.links

    @staticmethod
    def single_leg(g: NetworkGraph, path: Tuple[int, ...]) -> "SourceRoute":
        """Convenience: a route that is one plain up*/down* path."""
        return SourceRoute((RouteLeg.from_switch_path(g, path),))

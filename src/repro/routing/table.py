"""Routing tables: per-pair route alternatives for a whole network.

Myrinet NICs hold a routing table with one or more entries per
destination (Section 4.5); the paper caps alternatives at 10.  We compute
tables at switch granularity -- all hosts attached to a switch share its
switch-level paths -- and let the NIC layer add the host cables.

Schemes are pluggable: :func:`compute_tables` dispatches through the
:mod:`repro.routing.schemes` registry, where the paper's two schemes
(``"updown"``, ``"itb"``) and the extension schemes (``"updown-opt"``,
``"outflank"``, ``"dor"``) register their builders and capability
declarations.  Nothing in this module is scheme-specific.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..topology.graph import NetworkGraph
from .routes import RouteLeg, SourceRoute
from .updown import UpDownOrientation


@dataclass(frozen=True)
class RoutingTables:
    """All routes of one network under one scheme."""

    scheme: str
    root: int
    orientation: UpDownOrientation
    routes: Dict[Tuple[int, int], Tuple[SourceRoute, ...]]

    def alternatives(self, src_switch: int, dst_switch: int
                     ) -> Tuple[SourceRoute, ...]:
        """Route alternatives for an ordered switch pair."""
        return self.routes[(src_switch, dst_switch)]

    def max_alternatives(self) -> int:
        return max(len(alts) for alts in self.routes.values())

    def with_remapped_links(self, link_map: Mapping[int, int]
                            ) -> "RoutingTables":
        """Tables identical to these but with every link id translated
        through ``link_map``.

        Online reconfiguration computes tables on a mutated copy of
        the graph whose surviving cables were renumbered
        (:func:`repro.topology.mutate.without_links_mapped` reports the
        old->new mapping); before a running engine built on the
        *original* graph can use them, link ids must be translated
        back.  Switch and host ids are preserved by the mutation, so
        only ``links`` tuples and the orientation's per-link "up" ends
        change.  Ids absent from the map (the dead cables, in the
        reconfiguration case) get an impossible up end of ``-1`` -- no
        remapped route crosses them, so legality checks never consult
        those slots.  Raises :class:`KeyError` when a route crosses a
        link the map does not cover.
        """
        leg_cache: Dict[RouteLeg, RouteLeg] = {}

        def remap_leg(leg: RouteLeg) -> RouteLeg:
            out = leg_cache.get(leg)
            if out is None:
                out = RouteLeg(leg.switches,
                               tuple(link_map[l] for l in leg.links))
                leg_cache[leg] = out
            return out

        routes = {
            pair: tuple(SourceRoute(tuple(remap_leg(leg)
                                          for leg in r.legs),
                                    r.itb_hosts)
                        for r in alts)
            for pair, alts in self.routes.items()}
        up_end = [-1] * (max(link_map.values()) + 1 if link_map else 0)
        for cur, out in link_map.items():
            up_end[out] = self.orientation.up_end[cur]
        orientation = UpDownOrientation(self.orientation.tree,
                                        tuple(up_end))
        return RoutingTables(self.scheme, self.root, orientation, routes)

    def validate(self, g: NetworkGraph) -> None:
        """Assert structural soundness and deadlock-discipline of every
        route.

        Structural checks: endpoints match the pair key, legs chain
        through valid links, in-transit hosts sit on the leg-boundary
        switches.  Legality is then checked under the **discipline the
        scheme declares** in the registry (up*/down* leg legality for
        the paper's schemes, X-then-Y turn order for dimension-order
        routing) -- the deadlock-freedom argument made executable.
        """
        for (src, dst), alts in self.routes.items():
            assert alts, f"no route for pair ({src}, {dst})"
            for route in alts:
                assert route.src == src and route.dst == dst, (
                    f"route endpoints {route.src}->{route.dst} do not match "
                    f"pair ({src}, {dst})")
                for host, (prev, nxt) in zip(route.itb_hosts,
                                             zip(route.legs, route.legs[1:])):
                    assert g.host_switch(host) == prev.end == nxt.start, (
                        f"in-transit host {host} not at boundary switch of "
                        f"route {src}->{dst}")
        # imported lazily: schemes imports RoutingTables from this module
        from .schemes import check_discipline
        check_discipline(self, g)


def compute_tables(g: NetworkGraph, scheme: str, root: int = 0,
                   max_routes_per_pair: int = 10,
                   sort_by_itbs: bool = False) -> RoutingTables:
    """Compute routing tables for ``g`` under the registered ``scheme``.

    This is the entry point used by the experiment runner; results are
    deterministic for a given (graph, scheme, root).  ``sort_by_itbs``
    reorders ITB alternatives so the SP policy uses the fewest in-transit
    hops (an extension studied in the ablation benches; the paper's SP
    does not optimise this).  Unknown schemes raise a
    :class:`ValueError` listing the registered ones.
    """
    # imported lazily: schemes imports RoutingTables from this module
    from .schemes import make_tables
    return make_tables(g, scheme, root, max_routes_per_pair, sort_by_itbs)

"""Routing tables: per-pair route alternatives for a whole network.

Myrinet NICs hold a routing table with one or more entries per
destination (Section 4.5); the paper caps alternatives at 10.  We compute
tables at switch granularity -- all hosts attached to a switch share its
switch-level paths -- and let the NIC layer add the host cables.

Two schemes are supported:

* ``"updown"`` -- the UP/DOWN baseline: exactly one route per pair, the
  balanced path chosen by the ``simple_routes`` reimplementation;
* ``"itb"``    -- minimal routing with in-transit buffers: up to
  ``max_routes_per_pair`` minimal alternatives, each split into legal
  legs joined at in-transit hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..topology.graph import NetworkGraph
from .itb import build_itb_routes
from .routes import RouteLeg, SourceRoute
from .simple_routes import compute_simple_routes
from .spanning_tree import build_spanning_tree
from .updown import UpDownOrientation, orient_links


@dataclass(frozen=True)
class RoutingTables:
    """All routes of one network under one scheme."""

    scheme: str
    root: int
    orientation: UpDownOrientation
    routes: Dict[Tuple[int, int], Tuple[SourceRoute, ...]]

    def alternatives(self, src_switch: int, dst_switch: int
                     ) -> Tuple[SourceRoute, ...]:
        """Route alternatives for an ordered switch pair."""
        return self.routes[(src_switch, dst_switch)]

    def max_alternatives(self) -> int:
        return max(len(alts) for alts in self.routes.values())

    def with_remapped_links(self, link_map: Mapping[int, int]
                            ) -> "RoutingTables":
        """Tables identical to these but with every link id translated
        through ``link_map``.

        Online reconfiguration computes tables on a mutated copy of
        the graph whose surviving cables were renumbered
        (:func:`repro.topology.mutate.without_links_mapped` reports the
        old->new mapping); before a running engine built on the
        *original* graph can use them, link ids must be translated
        back.  Switch and host ids are preserved by the mutation, so
        only ``links`` tuples and the orientation's per-link "up" ends
        change.  Ids absent from the map (the dead cables, in the
        reconfiguration case) get an impossible up end of ``-1`` -- no
        remapped route crosses them, so legality checks never consult
        those slots.  Raises :class:`KeyError` when a route crosses a
        link the map does not cover.
        """
        leg_cache: Dict[RouteLeg, RouteLeg] = {}

        def remap_leg(leg: RouteLeg) -> RouteLeg:
            out = leg_cache.get(leg)
            if out is None:
                out = RouteLeg(leg.switches,
                               tuple(link_map[l] for l in leg.links))
                leg_cache[leg] = out
            return out

        routes = {
            pair: tuple(SourceRoute(tuple(remap_leg(leg)
                                          for leg in r.legs),
                                    r.itb_hosts)
                        for r in alts)
            for pair, alts in self.routes.items()}
        up_end = [-1] * (max(link_map.values()) + 1 if link_map else 0)
        for cur, out in link_map.items():
            up_end[out] = self.orientation.up_end[cur]
        orientation = UpDownOrientation(self.orientation.tree,
                                        tuple(up_end))
        return RoutingTables(self.scheme, self.root, orientation, routes)

    def validate(self, g: NetworkGraph) -> None:
        """Assert structural soundness of every route.

        Checks: endpoints match the pair key, legs chain through valid
        links, every leg individually satisfies the up*/down* rule, and
        in-transit hosts sit on the leg-boundary switches.  This is the
        deadlock-freedom argument of Section 3 made executable.
        """
        for (src, dst), alts in self.routes.items():
            assert alts, f"no route for pair ({src}, {dst})"
            for route in alts:
                assert route.src == src and route.dst == dst, (
                    f"route endpoints {route.src}->{route.dst} do not match "
                    f"pair ({src}, {dst})")
                for leg in route.legs:
                    assert self.orientation.path_is_legal(g, leg.switches), (
                        f"illegal leg {leg.switches} in route {src}->{dst}")
                for host, (prev, nxt) in zip(route.itb_hosts,
                                             zip(route.legs, route.legs[1:])):
                    assert g.host_switch(host) == prev.end == nxt.start, (
                        f"in-transit host {host} not at boundary switch of "
                        f"route {src}->{dst}")


def compute_tables(g: NetworkGraph, scheme: str, root: int = 0,
                   max_routes_per_pair: int = 10,
                   sort_by_itbs: bool = False) -> RoutingTables:
    """Compute routing tables for ``g`` under ``scheme``.

    This is the entry point used by the experiment runner; results are
    deterministic for a given (graph, scheme, root).  ``sort_by_itbs``
    reorders ITB alternatives so the SP policy uses the fewest in-transit
    hops (an extension studied in the ablation benches; the paper's SP
    does not optimise this).
    """
    tree = build_spanning_tree(g, root)
    ud = orient_links(g, root, tree)
    if scheme == "updown":
        paths = compute_simple_routes(g, ud)
        routes = {pair: (SourceRoute.single_leg(g, path),)
                  for pair, path in paths.items()}
    elif scheme == "itb":
        routes = build_itb_routes(g, ud, max_routes_per_pair, sort_by_itbs)
    else:
        raise ValueError(f"unknown routing scheme {scheme!r}")
    return RoutingTables(scheme, root, ud, routes)

"""Routing algorithms: up*/down* (Myrinet baseline) and in-transit buffers.

The pipeline mirrors Section 2--3 of the paper:

1. :mod:`spanning_tree` computes the BFS spanning tree and assigns an
   "up" direction to every link (Autonet rules).
2. :mod:`updown` provides legality checks and shortest *legal* path
   machinery on the resulting directed-link structure.
3. :mod:`simple_routes` reimplements Myricom's ``simple_routes`` program:
   one weight-balanced valid up*/down* route per switch pair -- this is
   the paper's UP/DOWN baseline.
4. :mod:`minimal` enumerates true minimal paths (up to the 10-alternative
   table cap).
5. :mod:`itb` splits minimal paths that violate the up*/down* rule into
   legal sub-routes joined at in-transit hosts, producing the ITB routes.
6. :mod:`table` assembles per-pair route tables;
   :mod:`policies` implements the SP / RR (and extension: random)
   path-selection policies.
7. :mod:`analysis` computes the route-quality statistics quoted in the
   paper (fraction of minimal paths, average distance, ITBs per message).

Schemes are **pluggable**: :mod:`schemes` keeps a registry (mirroring
:mod:`repro.sim.engines`) where each scheme declares its builder and
capabilities -- supported topologies, deadlock-freedom, legality
discipline.  Besides the paper's ``"updown"`` / ``"itb"``, the
extension schemes register here: :mod:`angara` (``"updown-opt"``,
optimized root selection + link ordering), :mod:`outflank`
(``"outflank"``, adaptive non-minimal grid routing) and :mod:`dor`
(``"dor"``, dimension-order on meshes).

:func:`compute_tables` is the high-level entry point used by the
experiment runner; it dispatches through the registry.
"""

from __future__ import annotations

from .routes import RouteLeg, SourceRoute
from .spanning_tree import SpanningTree, build_spanning_tree
from .updown import UpDownOrientation, orient_links
from .simple_routes import compute_simple_routes
from .minimal import enumerate_minimal_paths
from .itb import build_itb_routes, split_path_at_violations
from .table import RoutingTables, compute_tables
from .schemes import (Scheme, available_schemes, get_scheme, list_schemes,
                      make_tables, register_scheme, scheme_label,
                      supported_schemes, unregister_scheme)
from . import angara as _angara    # noqa: F401  (registers "updown-opt")
from . import dor as _dor          # noqa: F401  (registers "dor")
from . import outflank as _outflank  # noqa: F401  (registers "outflank")
from .policies import make_policy, PathSelectionPolicy
from .analysis import route_statistics, RouteStats

__all__ = [
    "RouteLeg",
    "SourceRoute",
    "SpanningTree",
    "build_spanning_tree",
    "UpDownOrientation",
    "orient_links",
    "compute_simple_routes",
    "enumerate_minimal_paths",
    "build_itb_routes",
    "split_path_at_violations",
    "RoutingTables",
    "compute_tables",
    "Scheme",
    "available_schemes",
    "get_scheme",
    "list_schemes",
    "make_tables",
    "register_scheme",
    "scheme_label",
    "supported_schemes",
    "unregister_scheme",
    "make_policy",
    "PathSelectionPolicy",
    "route_statistics",
    "RouteStats",
]

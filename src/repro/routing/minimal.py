"""Enumeration of true minimal (shortest) paths between switch pairs.

The in-transit buffer routing always uses minimal paths (Section 3), and
the routing table keeps at most 10 alternatives per pair (Section 4.5).
Shortest paths are enumerated over the shortest-path DAG toward the
destination: an edge ``u -> v`` is on some shortest path to ``d``
exactly when ``dist_d[v] == dist_d[u] - 1``.

Enumeration explores neighbours in ascending switch id (deterministic)
and stops at the alternative cap.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..topology.graph import NetworkGraph


def enumerate_minimal_paths(g: NetworkGraph, src: int, dst: int,
                            dist_to_dst: List[int],
                            max_paths: int = 10) -> List[Tuple[int, ...]]:
    """Up to ``max_paths`` minimal switch paths from ``src`` to ``dst``.

    ``dist_to_dst`` must be ``g.shortest_distances(dst)`` (hop counts to
    the destination); passing it in lets callers reuse one BFS per
    destination across all sources.
    """
    if src == dst:
        return [(src,)]
    if dist_to_dst[src] < 0:
        return []
    out: List[Tuple[int, ...]] = []
    path = [src]

    def dfs(s: int) -> bool:
        if len(out) >= max_paths:
            return False
        d = dist_to_dst[s]
        for nb, _lid in sorted(g.neighbors(s)):
            if dist_to_dst[nb] != d - 1:
                continue
            if nb == dst:
                out.append(tuple(path) + (dst,))
                if len(out) >= max_paths:
                    return False
                continue
            path.append(nb)
            ok = dfs(nb)
            path.pop()
            if not ok:
                return False
        return True

    dfs(src)
    return out


def count_minimal_paths(g: NetworkGraph, dst: int,
                        dist_to_dst: List[int]) -> List[int]:
    """Number of distinct minimal paths from every switch to ``dst``.

    Dynamic programming over the shortest-path DAG (exact, no cap);
    used by tests to validate the enumerator against an independent
    computation.
    """
    order = sorted(range(g.num_switches), key=lambda s: dist_to_dst[s])
    count = [0] * g.num_switches
    count[dst] = 1
    for s in order:
        if s == dst or dist_to_dst[s] < 0:
            continue
        total = 0
        for nb, _lid in g.neighbors(s):
            if dist_to_dst[nb] == dist_to_dst[s] - 1:
                total += count[nb]
        count[s] = total
    return count

"""Enumeration of true minimal (shortest) paths between switch pairs.

The in-transit buffer routing always uses minimal paths (Section 3), and
the routing table keeps at most 10 alternatives per pair (Section 4.5).
Shortest paths are enumerated over the shortest-path DAG toward the
destination: an edge ``u -> v`` is on some shortest path to ``d``
exactly when ``dist_d[v] == dist_d[u] - 1``.

Enumeration explores neighbours in ascending switch id (deterministic)
and stops at the alternative cap.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..topology.graph import NetworkGraph


def minimal_dag_successors(g: NetworkGraph,
                           dist_to_dst: List[int],
                           ) -> List[List[Tuple[int, int]]]:
    """``succ[s]``: ``(neighbour, link_id)`` pairs one hop closer to the
    destination, in ascending switch id.

    This is the adjacency of the shortest-path DAG toward the
    destination of ``dist_to_dst``.  Callers enumerating paths from many
    sources to the same destination compute it once and pass it to
    :func:`enumerate_minimal_paths` /
    :func:`enumerate_minimal_path_links`, which saves re-filtering the
    full neighbour lists at every DFS step.
    """
    return [[(nb, lid) for nb, lid in g.sorted_neighbors(s)
             if dist_to_dst[nb] == dist_to_dst[s] - 1]
            for s in range(g.num_switches)]


def enumerate_minimal_path_links(g: NetworkGraph, src: int, dst: int,
                                 dist_to_dst: List[int],
                                 max_paths: int = 10,
                                 succ: Optional[List[List[Tuple[int, int]]]]
                                 = None,
                                 ) -> List[Tuple[Tuple[int, ...],
                                                 Tuple[int, ...]]]:
    """Like :func:`enumerate_minimal_paths`, but each result is the pair
    ``(switch_path, link_ids)`` with the traversed link ids resolved
    during the walk.

    Table construction needs the link ids of every enumerated path
    anyway; resolving them here (the DFS already has them in hand from
    the adjacency) spares a per-path re-probe of the graph.
    """
    if src == dst:
        return [((src,), ())]
    if dist_to_dst[src] < 0:
        return []
    if succ is None:
        succ = minimal_dag_successors(g, dist_to_dst)
    out: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    path = [src]
    lids: List[int] = []

    def dfs(s: int) -> bool:
        if len(out) >= max_paths:
            return False
        for nb, lid in succ[s]:
            if nb == dst:
                out.append((tuple(path) + (dst,), tuple(lids) + (lid,)))
                if len(out) >= max_paths:
                    return False
                continue
            path.append(nb)
            lids.append(lid)
            ok = dfs(nb)
            path.pop()
            lids.pop()
            if not ok:
                return False
        return True

    dfs(src)
    return out


def enumerate_minimal_paths(g: NetworkGraph, src: int, dst: int,
                            dist_to_dst: List[int],
                            max_paths: int = 10,
                            succ: Optional[List[List[Tuple[int, int]]]]
                            = None,
                            ) -> List[Tuple[int, ...]]:
    """Up to ``max_paths`` minimal switch paths from ``src`` to ``dst``.

    ``dist_to_dst`` must be ``g.shortest_distances(dst)`` (hop counts to
    the destination); passing it in lets callers reuse one BFS per
    destination across all sources.  ``succ`` may hold the matching
    :func:`minimal_dag_successors` result to share that precomputation
    too; it is derived on the fly when omitted.
    """
    return [p for p, _lids in enumerate_minimal_path_links(
        g, src, dst, dist_to_dst, max_paths, succ)]


def count_minimal_paths(g: NetworkGraph, dst: int,
                        dist_to_dst: List[int]) -> List[int]:
    """Number of distinct minimal paths from every switch to ``dst``.

    Dynamic programming over the shortest-path DAG (exact, no cap);
    used by tests to validate the enumerator against an independent
    computation.
    """
    order = sorted(range(g.num_switches), key=lambda s: dist_to_dst[s])
    count = [0] * g.num_switches
    count[dst] = 1
    for s in order:
        if s == dst or dist_to_dst[s] < 0:
            continue
        total = 0
        for nb, _lid in g.neighbors(s):
            if dist_to_dst[nb] == dist_to_dst[s] - 1:
                total += count[nb]
        count[s] = total
    return count

"""In-transit buffer route construction (Section 3 of the paper).

Given a *minimal* switch path that violates the up*/down* rule, the path
is split at every illegal down->up transition: the packet is addressed to
an **in-transit host** attached to the switch where the violation would
occur, ejected there, and re-injected toward the next sub-destination.
Each resulting sub-path starts a fresh up*/down* phase, so every leg is a
legal route and the overall scheme stays deadlock-free while the packet
follows a minimal path end to end.

:func:`split_path_at_violations` performs the split for one path;
:func:`build_itb_routes` applies it to the (capped) set of minimal paths
of every switch pair and assigns concrete in-transit hosts, cycling
through the hosts of each switch so that the ITB workload is spread over
all NICs attached to it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..topology.graph import NetworkGraph
from .minimal import enumerate_minimal_path_links, minimal_dag_successors
from .routes import RouteLeg, SourceRoute
from .updown import UpDownOrientation


def _segment_bounds(path: Sequence[int], lids: Sequence[int],
                    up_end: Sequence[int]) -> List[Tuple[int, int]]:
    """Greedy cut points of ``path`` as (start, end) index pairs.

    ``lids`` are the pre-resolved link ids along the path.  The greedy
    rule -- cut exactly where the first illegal up-traversal would
    happen -- yields the minimum number of cuts for the given path,
    because every segment it produces is a maximal legal prefix of the
    remaining path.
    """
    bounds: List[Tuple[int, int]] = []
    seg_start = 0
    gone_down = False
    for i, lid in enumerate(lids):
        if up_end[lid] == path[i + 1]:      # up traversal
            if gone_down:
                # down->up transition: eject at switch path[i]
                bounds.append((seg_start, i))
                seg_start = i
                gone_down = False
        else:
            gone_down = True
    bounds.append((seg_start, len(path) - 1))
    return bounds


def split_path_at_violations(g: NetworkGraph, ud: UpDownOrientation,
                             path: Sequence[int]) -> List[Tuple[int, ...]]:
    """Split a switch path into maximal legal up*/down* sub-paths.

    Returns the list of sub-paths; consecutive sub-paths share their
    boundary switch (the in-transit switch).  A legal input path comes
    back as a single segment.
    """
    lids = g.path_links(path)
    return [tuple(path[s:e + 1])
            for s, e in _segment_bounds(path, lids, ud.up_end)]


class _ItbHostCycler:
    """Round-robin assignment of in-transit hosts per switch.

    Spreading consecutive ITB assignments over all hosts of a switch
    avoids turning a single NIC into an artificial hotspot during route
    construction (the paper only requires "a host connected to the
    intermediate switch").
    """

    def __init__(self, g: NetworkGraph) -> None:
        self._g = g
        self._next: Dict[int, int] = {}

    def take(self, switch: int) -> int:
        hosts = self._g.hosts_at(switch)
        if not hosts:
            raise ValueError(
                f"switch {switch} has no host to act as in-transit buffer")
        i = self._next.get(switch, 0)
        self._next[switch] = (i + 1) % len(hosts)
        return hosts[i]


def _route_from_path_links(ud: UpDownOrientation, path: Tuple[int, ...],
                           lids: Tuple[int, ...],
                           cycler: _ItbHostCycler) -> SourceRoute:
    """Split one resolved ``(path, link_ids)`` pair into a route."""
    bounds = _segment_bounds(path, lids, ud.up_end)
    if len(bounds) == 1:  # already legal -- the common case
        return SourceRoute((RouteLeg(path, lids),))
    legs = tuple([RouteLeg(path[s:e + 1], lids[s:e]) for s, e in bounds])
    itb_hosts = tuple([cycler.take(leg.end) for leg in legs[:-1]])
    return SourceRoute(legs, itb_hosts)


def route_from_path(g: NetworkGraph, ud: UpDownOrientation,
                    path: Sequence[int],
                    cycler: _ItbHostCycler) -> SourceRoute:
    """Build a :class:`SourceRoute` for one minimal path, inserting
    in-transit hosts wherever the up*/down* rule requires.

    Link ids are resolved once for the whole path; each leg is a slice
    of the (path, links) pair, so segments never re-probe the graph.
    """
    path = tuple(path)
    return _route_from_path_links(ud, path, g.path_links(path), cycler)


def balance_first_alternatives(
        g: NetworkGraph,
        routes: Dict[Tuple[int, int], Tuple[SourceRoute, ...]],
) -> Dict[Tuple[int, int], Tuple[SourceRoute, ...]]:
    """Reorder each pair's alternatives so the *first* one balances load.

    The SP policy always uses a pair's first table entry.  Plain
    enumeration order is lexicographic, which funnels all SP traffic
    through low-id switches and collapses well before the paper's
    reported ITB-SP throughput.  This pass mimics what ``simple_routes``
    does for the up*/down* baseline: walk the pairs in a deterministic
    interleaved order, promote the alternative with the lowest
    accumulated link weight to the front, and charge one weight unit to
    its links.  RR behaviour is unaffected (it cycles the whole set).
    """
    weight = [0] * g.num_links
    pairs = sorted((p for p in routes if p[0] != p[1]),
                   key=lambda p: ((p[0] + p[1]) % g.num_switches,
                                  p[0], p[1]))
    out = dict(routes)
    for pair in pairs:
        alts = routes[pair]
        if len(alts) > 1:
            def cost(route: SourceRoute) -> Tuple[int, int]:
                return (sum(weight[lid] for lid in route.link_ids),
                        route.num_itbs)
            best = min(range(len(alts)), key=lambda i: cost(alts[i]))
            if best != 0:
                reordered = (alts[best],) + alts[:best] + alts[best + 1:]
                out[pair] = reordered
        for lid in out[pair][0].link_ids:
            weight[lid] += 1
    return out


def build_itb_routes(g: NetworkGraph, ud: UpDownOrientation,
                     max_routes_per_pair: int = 10,
                     sort_by_itbs: bool = False,
                     balance_sp: bool = True,
                     ) -> Dict[Tuple[int, int], Tuple[SourceRoute, ...]]:
    """Minimal ITB routes for every ordered switch pair.

    Alternatives per pair are the (capped) minimal paths, each split into
    legal legs.  By default they stay in deterministic enumeration order,
    which matches the paper's behaviour: its SP policy "always chooses the
    same minimal path" without optimising the number of in-transit hops
    (the paper reports 0.43 ITBs/message for SP; enumeration order gives
    0.36 on the 8x8 torus, while picking the fewest-ITB alternative --
    ``sort_by_itbs=True``, studied in the ablation benches -- gives 0.22).
    """
    routes: Dict[Tuple[int, int], Tuple[SourceRoute, ...]] = {}
    cycler = _ItbHostCycler(g)  # shared so ITB duty rotates over all NICs
    for dst in g.switches():
        dist = g.shortest_distances(dst)
        succ = minimal_dag_successors(g, dist)
        for src in g.switches():
            if src == dst:
                routes[(src, dst)] = (
                    SourceRoute((RouteLeg((src,), ()),)),)
                continue
            pls = enumerate_minimal_path_links(
                g, src, dst, dist, max_paths=max_routes_per_pair, succ=succ)
            alts = [_route_from_path_links(ud, p, l, cycler)
                    for p, l in pls]
            if sort_by_itbs:
                alts.sort(key=lambda r: (r.num_itbs, r.switch_path))
            routes[(src, dst)] = tuple(alts)
    if balance_sp:
        routes = balance_first_alternatives(g, routes)
    return routes

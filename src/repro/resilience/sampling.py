"""Deterministic failure-set sampling.

Failure sets are a function of ``(seed, k)`` and the graph alone --
no global RNG state -- so a campaign re-run (or a cache hit in the
orchestrator's result store) sees byte-identical configurations.
Candidates are drawn from a seeded shuffle and accepted greedily while
the surviving switch graph stays connected, so even aggressive ``k``
values on sparse fabrics yield a usable (if partially smaller) set
instead of an error.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..topology.graph import NetworkGraph
from ..topology.mutate import without_links, without_switch_mapped


def sample_failed_links(g: NetworkGraph, k: int,
                        seed: int) -> Tuple[int, ...]:
    """Draw up to ``k`` distinct link ids whose joint removal keeps the
    switch graph connected.

    Links are tried in a seeded-shuffle order and accepted greedily;
    a candidate that would partition the survivors is skipped.  The
    result can be shorter than ``k`` only when the graph has fewer
    removable links than requested.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return ()
    ids = list(range(g.num_links))
    random.Random(f"resilience:{seed}:{k}").shuffle(ids)
    chosen: list = []
    for lid in ids:
        trial = chosen + [lid]
        try:
            without_links(g, trial)
        except ValueError:
            continue
        chosen = trial
        if len(chosen) == k:
            break
    return tuple(sorted(chosen))


def sample_failed_switch(g: NetworkGraph, seed: int) -> int:
    """Draw one switch whose removal keeps the survivors connected."""
    ids = list(range(g.num_switches))
    random.Random(f"resilience:{seed}:switch").shuffle(ids)
    for sw in ids:
        try:
            without_switch_mapped(g, sw)
        except ValueError:
            continue
        return sw
    raise ValueError(f"no switch of {g.name} is removable")

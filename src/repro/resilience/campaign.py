"""Graceful-degradation campaign: saturation vs injected failures.

For every failure count ``k`` the campaign samples one deterministic
link-failure set (:mod:`sampling`), rebuilds the complete routing
stack on the broken fabric through the registered ``"mutated"``
topology builder (spanning tree, up*/down* orientation, route
alternatives, ITB tables -- exactly the recomputation a real
reconfiguration would perform), and measures each scheme twice:

* a full saturation search (:func:`repro.metrics.saturation
  .find_saturation`) for the degraded throughput;
* one fixed-rate probe run with link statistics for the route-quality
  and utilisation-concentration metrics.

Cells are independent, so with an :class:`repro.orchestrator.Executor`
each ``(k, scheme)`` cell is one orchestrator task -- parallel,
checkpointed in the result store, and restartable.  The inline path
runs the same task function, producing bit-identical cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..canon import freeze
from ..config import SimConfig
from ..experiments.profiles import Profile
from ..experiments.runner import get_graph, get_tables, run_simulation
from ..metrics.saturation import find_saturation
from ..routing.analysis import route_statistics
from ..routing.schemes import scheme_label
from ..traffic.defaults import DEFAULT_PATTERN
from .sampling import sample_failed_links

#: the two schemes the degradation table compares (the paper's main
#: contenders: original up*/down* vs ITBs with round-robin selection);
#: labels come from the scheme registry
SCHEMES: Tuple[Tuple[str, str, str], ...] = tuple(
    (routing, policy, scheme_label(routing, policy))
    for routing, policy in (("updown", "sp"), ("itb", "rr")))

#: fn-path of :func:`resilience_cell_task` for the orchestrator
RESILIENCE_TASK_FN = "repro.resilience.campaign:resilience_cell_task"


@dataclass(frozen=True)
class ResilienceCell:
    """One (failure count, scheme) entry of the degradation table."""

    k: int
    label: str
    routing: str
    policy: str
    #: base-graph link ids killed in this configuration
    failed_links: Tuple[int, ...]
    #: saturation throughput on the broken fabric, flits/ns/switch
    throughput: float
    #: did the saturation search bracket a knee?
    converged: bool
    #: throughput / healthy-baseline throughput of the same scheme
    retention: float
    #: fraction of pairs whose first route alternative is minimal
    fraction_minimal: float
    #: measured in-transit buffers per message at the probe rate
    avg_itbs_per_message: float
    #: share of total link utilisation carried by channels incident to
    #: the up*/down* root switch (concentration -> hotspotting there)
    root_concentration: float


@dataclass(frozen=True)
class ResilienceReport:
    """The full degradation study for one topology and seed."""

    topology: str
    topology_kwargs: Dict[str, Any]
    seed: int
    ks: Tuple[int, ...]
    #: healthy (k=0) cells by scheme label
    baseline: Dict[str, ResilienceCell]
    #: degraded cells, ordered by (k, scheme)
    cells: Tuple[ResilienceCell, ...]


def _mutated_kwargs(topology: str, topology_kwargs: Dict[str, Any],
                    failed_links: Tuple[int, ...]) -> Dict[str, Any]:
    return {"base": topology, "base_kwargs": dict(topology_kwargs),
            "failed_links": list(failed_links)}


def _cell_payload(topology: str, topology_kwargs: Dict[str, Any],
                  failed_links: Tuple[int, ...], routing: str,
                  policy: str, profile: Profile, start_rate: float,
                  probe_rate: float, seed: int, root: int) -> dict:
    """JSON-safe description of one cell (orchestrator task payload)."""
    if failed_links:
        topo = "mutated"
        topo_kwargs = _mutated_kwargs(topology, topology_kwargs,
                                      failed_links)
    else:
        topo, topo_kwargs = topology, dict(topology_kwargs)
    return {
        "topology": topo,
        "topology_kwargs": topo_kwargs,
        "routing": routing,
        "policy": policy,
        "seed": seed,
        "root": root,
        "start_rate": start_rate,
        "probe_rate": probe_rate,
        "sat_warmup_ps": profile.sat_warmup_ps,
        "sat_measure_ps": profile.sat_measure_ps,
        "growth": profile.sat_growth,
        "refine_steps": profile.sat_refine_steps,
    }


def resilience_cell_task(payload: dict) -> dict:
    """Worker function: one cell's saturation search plus probe run.

    JSON in, JSON out, so cells flow through the worker pool and the
    content-addressed result store like any other campaign point.
    """
    root = payload["root"]

    def cfg_at(rate: float) -> SimConfig:
        return SimConfig(
            topology=payload["topology"],
            topology_kwargs=payload["topology_kwargs"],
            routing=payload["routing"], policy=payload["policy"],
            traffic=DEFAULT_PATTERN, injection_rate=rate,
            warmup_ps=payload["sat_warmup_ps"],
            measure_ps=payload["sat_measure_ps"],
            seed=payload["seed"])

    sat = find_saturation(lambda rate: run_simulation(cfg_at(rate),
                                                      root=root),
                          payload["start_rate"],
                          growth=payload["growth"],
                          refine_steps=payload["refine_steps"])

    probe = run_simulation(cfg_at(payload["probe_rate"]),
                           collect_links=True, root=root)
    links = probe.link_utilization
    total = float(links.utilization.sum())
    at_root = float(sum(
        u for u, (a, b, _lid) in zip(links.utilization,
                                     links.channel_ends)
        if root in (a, b)))

    g = get_graph(payload["topology"], payload["topology_kwargs"])
    tables = get_tables(g, (payload["topology"],
                            freeze(payload["topology_kwargs"])),
                        payload["routing"], root)
    stats = route_statistics(g, tables)

    return {
        "throughput": sat.throughput,
        "converged": sat.converged,
        "runs": len(sat.runs),
        "fraction_minimal": stats.fraction_minimal,
        "avg_itbs_per_message": probe.avg_itbs_per_message or 0.0,
        "root_concentration": at_root / total if total > 0 else 0.0,
    }


def run_resilience(topology: str, profile: Profile, seed: int = 1,
                   ks: Tuple[int, ...] = (1, 2, 4),
                   topology_kwargs: Optional[Dict[str, Any]] = None,
                   start_rate: float = 0.005,
                   probe_rate: float = 0.01,
                   root: int = 0,
                   executor=None) -> ResilienceReport:
    """Run the full degradation study for one topology.

    ``ks`` are the link-failure counts; k=0 (the healthy baseline) is
    always measured and is what retention is computed against.
    """
    topology_kwargs = dict(topology_kwargs or {})
    g = get_graph(topology, topology_kwargs)
    failure_sets: Dict[int, Tuple[int, ...]] = {0: ()}
    for k in ks:
        failure_sets[k] = sample_failed_links(g, k, seed)

    all_ks = [0] + [k for k in ks if k != 0]
    specs: List[Tuple[int, str, str, str, dict]] = []
    for k in all_ks:
        for routing, policy, label in SCHEMES:
            specs.append((k, routing, policy, label, _cell_payload(
                topology, topology_kwargs, failure_sets[k], routing,
                policy, profile, start_rate, probe_rate, seed, root)))

    if executor is not None:
        results = executor.run_tasks(
            RESILIENCE_TASK_FN, [p for *_, p in specs],
            labels=[f"resilience {label} k={k}"
                    for k, _, _, label, _ in specs])
    else:
        results = [resilience_cell_task(p) for *_, p in specs]

    cells_by_key: Dict[Tuple[int, str], ResilienceCell] = {}
    base_throughput: Dict[str, float] = {}
    for (k, routing, policy, label, _), r in zip(specs, results):
        if k == 0:
            base_throughput[label] = r["throughput"]
    for (k, routing, policy, label, _), r in zip(specs, results):
        base = base_throughput[label]
        cells_by_key[(k, label)] = ResilienceCell(
            k=k, label=label, routing=routing, policy=policy,
            failed_links=failure_sets[k],
            throughput=r["throughput"], converged=r["converged"],
            retention=r["throughput"] / base if base > 0 else 0.0,
            fraction_minimal=r["fraction_minimal"],
            avg_itbs_per_message=r["avg_itbs_per_message"],
            root_concentration=r["root_concentration"])

    baseline = {label: cells_by_key[(0, label)]
                for _, _, label in SCHEMES}
    cells = tuple(cells_by_key[(k, label)]
                  for k in all_ks if k != 0
                  for _, _, label in SCHEMES)
    return ResilienceReport(topology, topology_kwargs, seed,
                            tuple(k for k in all_ks if k != 0),
                            baseline, cells)


def torus_resilience(profile: Profile, executor=None) -> ResilienceReport:
    """Registry entry: link-failure degradation on a 4x4 torus.

    The scaled-down fabric keeps the study tractable at every profile;
    failure counts follow the issue's k in {1, 2, 4}.
    """
    return run_resilience(
        "torus", profile, seed=1, ks=(1, 2, 4),
        topology_kwargs={"rows": 4, "cols": 4, "hosts_per_switch": 2},
        executor=executor)

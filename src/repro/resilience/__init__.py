"""Fault-injection resilience studies.

The paper motivates source routing with reconfiguration cost: when the
topology changes, only the NICs' route tables need recomputing.  This
package quantifies the other side of that argument -- how gracefully
the schemes degrade while running on a broken fabric:

* :mod:`sampling` draws deterministic link/switch failure sets from a
  seed, keeping the switch graph connected;
* :mod:`campaign` rebuilds routing (spanning tree, up*/down*
  orientation, routes, ITB tables) for every failure configuration via
  the ``"mutated"`` topology builder, drives per-configuration
  saturation searches through the orchestrator, and reduces them to
  graceful-degradation metrics against the healthy baseline;
* :mod:`recovery` measures the transient: a cable dies under live
  traffic with reliable delivery on, comparing PR 4's static blacklist
  against online reconfiguration (time-to-recover, retransmission and
  duplicate cost, permanent losses);
* :mod:`report` renders the degradation and recovery tables.

Dynamic mid-run faults (a cable dying under live traffic) live in
:mod:`repro.sim.faults`; the protocol machinery that survives them
(retransmission, ACKs, table hot-swap) in :mod:`repro.sim.reliable`.
"""

from .campaign import (RESILIENCE_TASK_FN, ResilienceCell,
                       ResilienceReport, resilience_cell_task,
                       run_resilience)
from .recovery import (RECOVERY_TASK_FN, RecoveryCell, RecoveryReport,
                       recovery_cell_task, run_recovery, torus_recovery)
from .report import render_recovery_table, render_resilience_table
from .sampling import sample_failed_links, sample_failed_switch

__all__ = ["ResilienceCell", "ResilienceReport", "RESILIENCE_TASK_FN",
           "resilience_cell_task", "run_resilience",
           "RecoveryCell", "RecoveryReport", "RECOVERY_TASK_FN",
           "recovery_cell_task", "run_recovery", "torus_recovery",
           "render_resilience_table", "render_recovery_table",
           "sample_failed_links", "sample_failed_switch"]

"""Recovery campaign: reliable delivery + reconfiguration under a
mid-run link failure.

Where :mod:`campaign` asks the *steady-state* question (how much
performance remains once routing has been recomputed on a broken
fabric), this module asks the *transient* one: a cable dies under live
traffic -- how long until accepted traffic is back, how many
retransmissions did the recovery cost, and does anything stay lost?

One scenario, measured as a matrix: for each routing scheme (the
paper's UP/DOWN baseline vs ITB-RR) and each fault-handling policy
(PR 4's static ``blacklist`` vs online ``reconfigure``), the same link
dies a quarter into the measurement window at several offered loads.
Reliable delivery is on everywhere -- the policies differ only in what
the NICs route with afterwards -- so the table isolates what table
recomputation buys on top of retransmission.

Cells are JSON-in/JSON-out tasks (:func:`recovery_cell_task`) so the
campaign flows through the orchestrator's worker pool and result store
exactly like the degradation study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..config import SimConfig
from ..experiments.profiles import Profile
from ..experiments.runner import get_graph, run_simulation
from ..sim.faults import FaultPlan
from ..sim.reliable import ReconfigParams, ReliableParams
from ..traffic.defaults import DEFAULT_PATTERN
from .campaign import SCHEMES
from .sampling import sample_failed_links

#: fn-path of :func:`recovery_cell_task` for the orchestrator
RECOVERY_TASK_FN = "repro.resilience.recovery:recovery_cell_task"

#: offered loads of the goodput-vs-load columns, flits/ns/switch
DEFAULT_RATES: Tuple[float, ...] = (0.01, 0.02, 0.03)


@dataclass(frozen=True)
class RecoveryCell:
    """One (scheme, policy, offered load) entry of the recovery table."""

    label: str
    routing: str
    policy: str
    #: fault-handling policy: ``"blacklist"`` or ``"reconfigure"``
    mode: str
    #: nominal offered load, flits/ns/switch
    rate: float
    #: measured goodput (unique deliveries), flits/ns/switch
    goodput: float
    messages_generated: int
    messages_delivered: int
    #: retransmitted attempts per generated message
    retransmissions_per_message: float
    #: duplicate copies per delivered message
    duplicate_rate: float
    permanent_losses: int
    dropped_in_flight: int
    dropped_unroutable: int
    reconfigurations: int
    #: fault -> accepted traffic back within threshold; ``None`` when
    #: the run never recovers inside the window
    time_to_recover_ns: Optional[float]


@dataclass(frozen=True)
class RecoveryReport:
    """The full recovery study for one topology, fault and seed."""

    topology: str
    topology_kwargs: Dict[str, Any]
    seed: int
    #: the cable that dies
    failed_link: int
    #: failure instant, ns from simulation start
    fault_ns: float
    #: mapper detection latency, ns
    detection_ns: float
    #: cells ordered by (scheme, mode, rate)
    cells: Tuple[RecoveryCell, ...]


def _cell_payload(topology: str, topology_kwargs: Dict[str, Any],
                  routing: str, policy: str, mode: str, rate: float,
                  profile: Profile, seed: int, root: int,
                  fault_plan: FaultPlan, reliable: ReliableParams,
                  detection_latency_ps: int) -> dict:
    """JSON-safe description of one cell (orchestrator task payload)."""
    return {
        "topology": topology,
        "topology_kwargs": dict(topology_kwargs),
        "routing": routing,
        "policy": policy,
        "seed": seed,
        "root": root,
        "rate": rate,
        "warmup_ps": profile.warmup_ps,
        "measure_ps": profile.measure_ps,
        "fault_plan": fault_plan.to_dict(),
        "reliable": reliable.to_dict(),
        "reconfig": ReconfigParams(
            policy=mode,
            detection_latency_ps=detection_latency_ps).to_dict(),
    }


def recovery_cell_task(payload: dict) -> dict:
    """Worker function: one recovery run, summarised to plain JSON."""
    cfg = SimConfig(
        topology=payload["topology"],
        topology_kwargs=payload["topology_kwargs"],
        routing=payload["routing"], policy=payload["policy"],
        traffic=DEFAULT_PATTERN, injection_rate=payload["rate"],
        warmup_ps=payload["warmup_ps"],
        measure_ps=payload["measure_ps"],
        seed=payload["seed"])
    s = run_simulation(cfg, root=payload["root"],
                       fault_plan=payload["fault_plan"],
                       reliable=payload["reliable"],
                       reconfig=payload["reconfig"])
    return {
        "goodput": s.accepted_flits_ns_switch,
        "messages_generated": s.messages_generated,
        "messages_delivered": s.messages_delivered,
        "retransmissions": s.retransmissions,
        "duplicate_deliveries": s.duplicate_deliveries,
        "permanent_losses": s.permanent_losses,
        "dropped_in_flight": s.dropped_in_flight,
        "dropped_unroutable": s.dropped_unroutable,
        "reconfigurations": s.reconfigurations,
        "time_to_recover_ns": s.time_to_recover_ns,
    }


def run_recovery(topology: str, profile: Profile, seed: int = 1,
                 rates: Tuple[float, ...] = DEFAULT_RATES,
                 topology_kwargs: Optional[Dict[str, Any]] = None,
                 root: int = 0,
                 reliable: Optional[ReliableParams] = None,
                 detection_latency_ps: Optional[int] = None,
                 executor=None) -> RecoveryReport:
    """Run the recovery matrix for one topology, fault and seed.

    The failed cable is the seed's first connectivity-preserving
    sample, so both policies face the *same* fault; it dies a quarter
    into the measurement window, leaving three quarters to observe the
    recovery.
    """
    topology_kwargs = dict(topology_kwargs or {})
    g = get_graph(topology, topology_kwargs)
    failed_link = sample_failed_links(g, 1, seed)[0]
    fault_ps = profile.warmup_ps + profile.measure_ps // 4
    fault_plan = FaultPlan.at((fault_ps, failed_link))
    reliable = reliable or ReliableParams()
    if detection_latency_ps is None:
        detection_latency_ps = ReconfigParams().detection_latency_ps

    specs: List[Tuple[str, str, str, str, float, dict]] = []
    for routing, policy, label in SCHEMES:
        for mode in ("blacklist", "reconfigure"):
            for rate in rates:
                specs.append((routing, policy, label, mode, rate,
                              _cell_payload(topology, topology_kwargs,
                                            routing, policy, mode, rate,
                                            profile, seed, root,
                                            fault_plan, reliable,
                                            detection_latency_ps)))

    if executor is not None:
        results = executor.run_tasks(
            RECOVERY_TASK_FN, [p for *_, p in specs],
            labels=[f"recovery {label} {mode} rate={rate}"
                    for _, _, label, mode, rate, _ in specs])
    else:
        results = [recovery_cell_task(p) for *_, p in specs]

    cells = []
    for (routing, policy, label, mode, rate, _), r in zip(specs, results):
        gen = r["messages_generated"]
        dlv = r["messages_delivered"]
        cells.append(RecoveryCell(
            label=label, routing=routing, policy=policy, mode=mode,
            rate=rate, goodput=r["goodput"],
            messages_generated=gen, messages_delivered=dlv,
            retransmissions_per_message=(r["retransmissions"] / gen
                                         if gen else 0.0),
            duplicate_rate=(r["duplicate_deliveries"] / dlv
                            if dlv else 0.0),
            permanent_losses=r["permanent_losses"],
            dropped_in_flight=r["dropped_in_flight"],
            dropped_unroutable=r["dropped_unroutable"],
            reconfigurations=r["reconfigurations"],
            time_to_recover_ns=r["time_to_recover_ns"]))
    return RecoveryReport(topology, topology_kwargs, seed, failed_link,
                          fault_ps / 1_000, detection_latency_ps / 1_000,
                          tuple(cells))


def torus_recovery(profile: Profile, executor=None) -> RecoveryReport:
    """Registry entry: mid-run link failure on the 4-ary 2-cube.

    The 4x4 torus with two hosts per switch is the acceptance fabric:
    small enough that every (scheme, policy, load) cell runs in
    seconds, dense enough that a single dead cable actually bends
    routes.  With reconfiguration on, permanent losses must be zero --
    the fault never partitions the fabric, so every pair stays
    connected and every message is eventually retransmitted home.
    """
    return run_recovery(
        "torus", profile, seed=1,
        topology_kwargs={"rows": 4, "cols": 4, "hosts_per_switch": 2},
        executor=executor)

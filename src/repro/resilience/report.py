"""ASCII rendering of the graceful-degradation table."""

from __future__ import annotations

from typing import List

from .campaign import ResilienceCell, ResilienceReport


def _row(cell: ResilienceCell) -> str:
    conv = "" if cell.converged else " (unconverged)"
    return (f"{cell.k:>3d}  {cell.label:8s} "
            f"{cell.throughput:10.4f} {cell.retention:9.1%} "
            f"{cell.fraction_minimal:8.1%} "
            f"{cell.avg_itbs_per_message:9.2f} "
            f"{cell.root_concentration:9.1%}{conv}")


def render_resilience_table(report: ResilienceReport) -> str:
    """The degradation study as a fixed-width table.

    ``retention`` is saturation throughput relative to the same
    scheme's healthy (k=0) baseline -- the headline graceful-
    degradation number; the remaining columns explain *why* it moved
    (fewer minimal paths, more in-transit hops, utilisation piling up
    around the up*/down* root).
    """
    lines: List[str] = []
    kw = ", ".join(f"{k}={v}" for k, v in
                   sorted(report.topology_kwargs.items()))
    lines.append(f"Graceful degradation, {report.topology}"
                 + (f" ({kw})" if kw else "")
                 + f", seed {report.seed}")
    lines.append(f"{'  k':>3s}  {'scheme':8s} {'sat thpt':>10s} "
                 f"{'retain':>9s} {'minimal':>8s} {'itbs/msg':>9s} "
                 f"{'root util':>9s}")
    for label, cell in report.baseline.items():
        lines.append(_row(cell))
    for k in report.ks:
        failed = next(c.failed_links for c in report.cells if c.k == k)
        lines.append(f"  -- k={k}: failed links "
                     f"{', '.join(map(str, failed))}")
        for cell in report.cells:
            if cell.k == k:
                lines.append(_row(cell))
    return "\n".join(lines)

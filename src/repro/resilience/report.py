"""ASCII rendering of the resilience tables (degradation + recovery)."""

from __future__ import annotations

from typing import List

from .campaign import ResilienceCell, ResilienceReport
from .recovery import RecoveryCell, RecoveryReport


def _row(cell: ResilienceCell) -> str:
    conv = "" if cell.converged else " (unconverged)"
    return (f"{cell.k:>3d}  {cell.label:8s} "
            f"{cell.throughput:10.4f} {cell.retention:9.1%} "
            f"{cell.fraction_minimal:8.1%} "
            f"{cell.avg_itbs_per_message:9.2f} "
            f"{cell.root_concentration:9.1%}{conv}")


def render_resilience_table(report: ResilienceReport) -> str:
    """The degradation study as a fixed-width table.

    ``retention`` is saturation throughput relative to the same
    scheme's healthy (k=0) baseline -- the headline graceful-
    degradation number; the remaining columns explain *why* it moved
    (fewer minimal paths, more in-transit hops, utilisation piling up
    around the up*/down* root).
    """
    lines: List[str] = []
    kw = ", ".join(f"{k}={v}" for k, v in
                   sorted(report.topology_kwargs.items()))
    lines.append(f"Graceful degradation, {report.topology}"
                 + (f" ({kw})" if kw else "")
                 + f", seed {report.seed}")
    lines.append(f"{'  k':>3s}  {'scheme':8s} {'sat thpt':>10s} "
                 f"{'retain':>9s} {'minimal':>8s} {'itbs/msg':>9s} "
                 f"{'root util':>9s}")
    for label, cell in report.baseline.items():
        lines.append(_row(cell))
    for k in report.ks:
        failed = next(c.failed_links for c in report.cells if c.k == k)
        lines.append(f"  -- k={k}: failed links "
                     f"{', '.join(map(str, failed))}")
        for cell in report.cells:
            if cell.k == k:
                lines.append(_row(cell))
    return "\n".join(lines)


def _recovery_row(cell: RecoveryCell) -> str:
    ttr = (f"{cell.time_to_recover_ns:9.0f}"
           if cell.time_to_recover_ns is not None else "      n/a")
    loss = cell.permanent_losses
    return (f"{cell.label:8s} {cell.mode:11s} {cell.rate:7.3f} "
            f"{cell.goodput:8.4f} "
            f"{cell.retransmissions_per_message:8.3f} "
            f"{cell.duplicate_rate:6.1%} {loss:5d} "
            f"{cell.dropped_in_flight:5d} {cell.dropped_unroutable:5d} "
            f"{ttr}")


def render_recovery_table(report: RecoveryReport) -> str:
    """The recovery study as a fixed-width table.

    ``perm`` is the headline column: messages abandoned after the
    retransmission budget.  Under the ``reconfigure`` policy it must
    be zero whenever the fault leaves the fabric connected -- that is
    the reliable-delivery guarantee.  ``rtx/msg`` and ``dup`` show
    what the recovery cost; ``ttr`` how long accepted traffic took to
    return to the pre-fault level.
    """
    lines: List[str] = []
    kw = ", ".join(f"{k}={v}" for k, v in
                   sorted(report.topology_kwargs.items()))
    lines.append(f"Recovery after a mid-run link failure, {report.topology}"
                 + (f" ({kw})" if kw else "")
                 + f", seed {report.seed}")
    lines.append(f"link {report.failed_link} dies at "
                 f"{report.fault_ns:.0f} ns; mapper detection latency "
                 f"{report.detection_ns:.0f} ns; reliable delivery on")
    lines.append(f"{'scheme':8s} {'policy':11s} {'rate':>7s} "
                 f"{'goodput':>8s} {'rtx/msg':>8s} {'dup':>6s} "
                 f"{'perm':>5s} {'drop':>5s} {'unrt':>5s} {'ttr(ns)':>9s}")
    for cell in report.cells:
        lines.append(_recovery_row(cell))
    return "\n".join(lines)

#!/usr/bin/env python
"""Capacity study of the Sandia CPLANT cluster (paper Figure 7c).

A downstream-user scenario: you operate a CPLANT-like 400-node Myrinet
cluster and want to know how much uniform background load it sustains
with the stock up*/down* routes versus in-transit-buffer routing, and
where the network runs hot.

The script sweeps offered load for the three routing configurations,
prints the latency curves, locates each saturation point, and shows the
hottest links under UP/DOWN at its saturation point (they cluster
around the spanning-tree root's group, exactly as Section 4.7.1
describes).

Run:  python examples/cplant_study.py        (~1 minute)
"""

from repro import SimConfig, run_simulation, sweep_rates
from repro.units import ns

RATES = [0.02, 0.04, 0.06, 0.08, 0.10]
WINDOW = dict(warmup_ps=ns(60_000), measure_ps=ns(250_000))


def main() -> None:
    print("=== CPLANT (50 switches / 400 hosts), uniform traffic ===\n")
    curves = []
    for routing, policy in [("updown", "sp"), ("itb", "sp"), ("itb", "rr")]:
        base = SimConfig(topology="cplant", routing=routing, policy=policy,
                         traffic="uniform", **WINDOW)
        curve = sweep_rates(base, RATES)
        curves.append(curve)
        print(f"-- {curve.label}")
        for r in curve.runs:
            lat = (f"{r.avg_latency_ns:8.0f} ns"
                   if r.avg_latency_ns is not None else "     n/a")
            print(f"   offered {r.offered_flits_ns_switch:.3f}  "
                  f"accepted {r.accepted_flits_ns_switch:.3f}  "
                  f"latency {lat}"
                  f"{'   << saturated' if r.saturated else ''}")
        print(f"   throughput: {curve.throughput():.3f} flits/ns/switch\n")

    base_thr = curves[0].throughput()
    print("ITB improvement over UP/DOWN: "
          + ", ".join(f"{c.label} x{c.throughput() / base_thr:.2f}"
                      for c in curves[1:]))
    print("(paper: UP/DOWN 0.05, ITB-RR 0.095 -- roughly doubled)\n")

    # where does the stock routing run hot?
    sat = curves[0].saturation_rate() or RATES[-1]
    cfg = SimConfig(topology="cplant", routing="updown", policy="sp",
                    traffic="uniform", injection_rate=sat, **WINDOW)
    summary = run_simulation(cfg, collect_links=True)
    u = summary.link_utilization
    assert u is not None
    print(f"=== Hottest links under UP/DOWN at {sat:.3f} flits/ns/switch ===")
    print("(switch ids; 0-7 is the root group of the CPLANT fabric)")
    for util, src, dst, _lid in u.hottest(8):
        print(f"   {util:6.1%}  switch {src:2d} -> switch {dst:2d}")
    s = u.summary()
    print(f"\n{s['frac_below_10pct']:.0%} of links are below 10% utilisation "
          f"while the peak is {s['max']:.0%} -- the root bottleneck the "
          f"in-transit buffer mechanism removes.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Bring your own topology: wiring, routing, deadlock, simulation.

Demonstrates the full public API on a network that is *not* one of the
paper's: a 3x3 mesh-with-wraparound-row ("partial torus") of 4-port
workgroup switches, 2 hosts each.  The walk-through:

1. build and validate the custom :class:`NetworkGraph`;
2. compute up*/down* and ITB routing tables and compare their quality;
3. show that naive minimal source routing (no ITBs) deadlocks on this
   cyclic topology -- and that the watchdog catches it;
4. simulate both routings and report throughput/latency.

Run:  python examples/custom_topology.py
"""

from repro import (DeadlockError, NetworkGraph, SimConfig, check_topology,
                   compute_tables, route_statistics, run_simulation)
from repro.routing.routes import SourceRoute
from repro.routing.table import RoutingTables
from repro.topology import BUILDERS
from repro.units import ns


def build_partial_torus(hosts_per_switch: int = 2) -> NetworkGraph:
    """3x3 grid, rows wrap around (each row is a ring), columns do not."""
    g = NetworkGraph(9, switch_ports=8, name="partial-torus-3x3")
    for r in range(3):
        for c in range(3):
            s = r * 3 + c
            g.add_link(s, r * 3 + (c + 1) % 3)  # row ring
            if r < 2:
                g.add_link(s, (r + 1) * 3 + c)  # column line
    for s in range(9):
        g.add_hosts(s, hosts_per_switch)
    return g.freeze()


def clockwise_ring_tables(g, tables):
    """Dimension-ordered routes that always walk row rings clockwise --
    the classic cyclic channel dependency that up*/down* (and ITB's leg
    splitting) exists to forbid.  Deliberately unsafe."""
    routes = {}
    for src in g.switches():
        for dst in g.switches():
            path = [src]
            # clockwise along the row ring first ...
            while path[-1] % 3 != dst % 3:
                path.append((path[-1] // 3) * 3 + (path[-1] + 1) % 3)
            # ... then straight down/up the column
            while path[-1] != dst:
                step = 3 if dst > path[-1] else -3
                path.append(path[-1] + step)
            routes[(src, dst)] = (SourceRoute.single_leg(g, tuple(path)),)
    return RoutingTables("itb", 0, tables.orientation, routes)


def main() -> None:
    g = build_partial_torus()
    check_topology(g)
    print(f"built {g}: degrees "
          f"{sorted(set(g.degree(s) for s in g.switches()))}, "
          f"{g.num_hosts} hosts\n")

    # registering makes the topology usable from SimConfig by name
    BUILDERS["partial-torus"] = build_partial_torus

    print("=== route quality ===")
    for scheme in ("updown", "itb"):
        st = route_statistics(g, compute_tables(g, scheme))
        print(f"{scheme:7s}: {st.fraction_minimal:6.1%} minimal, "
              f"avg {st.avg_distance_sp:.2f} links, "
              f"{st.avg_alternatives:.1f} alternatives/pair, "
              f"{st.avg_itbs_rr:.2f} ITBs/msg (RR)")

    print("\n=== deadlock demonstration ===")
    cfg = SimConfig(topology="partial-torus", routing="itb", policy="sp",
                    traffic="uniform", injection_rate=0.3,
                    warmup_ps=ns(300_000), measure_ps=ns(2_000_000))
    tables = compute_tables(g, "updown")
    try:
        run_simulation(cfg, tables=clockwise_ring_tables(g, tables),
                       watchdog_ps=ns(100_000))
        print("clockwise ring routing survived (lucky run)")
    except DeadlockError as e:
        print(f"clockwise ring routing (no ITBs): DEADLOCK detected -- {e}")
    ok = run_simulation(cfg.with_overrides(policy="rr"),
                        watchdog_ps=ns(100_000))
    print(f"ITB minimal routing at the same load: "
          f"{ok.messages_delivered} messages delivered, no deadlock\n")

    print("=== throughput comparison (uniform traffic) ===")
    for routing, policy in [("updown", "sp"), ("itb", "rr")]:
        for rate in (0.05, 0.10, 0.15):
            cfg = SimConfig(topology="partial-torus", routing=routing,
                            policy=policy, traffic="uniform",
                            injection_rate=rate,
                            warmup_ps=ns(50_000), measure_ps=ns(200_000))
            print(run_simulation(cfg).oneline())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Hotspot sensitivity on the 2-D torus (paper Table 1 / Figure 11).

Scenario: one host of the cluster (say a file server) receives a fixed
share of all traffic.  How does each routing algorithm degrade as that
share grows, and which part of the network saturates first?

The script measures saturation throughput for hotspot shares of 0 %
(pure uniform), 5 % and 10 %, then prints the per-switch utilisation
map at UP/DOWN's saturation point so the two failure modes are visible:
UP/DOWN collapses at the spanning-tree *root* (top-left of the map)
regardless of where the hotspot is, while ITB-RR only runs hot around
the *hotspot switch* itself.

Run:  python examples/hotspot_analysis.py        (~2 minutes)
"""

from repro import SimConfig, find_saturation, run_simulation
from repro.experiments.report import render_link_map
from repro.experiments.figures import LinkMapResult
from repro.units import ns

HOTSPOT_HOST = 260          # a host on switch 32, mid-grid
WINDOW = dict(warmup_ps=ns(40_000), measure_ps=ns(150_000))


def saturation(routing: str, policy: str, fraction: float) -> float:
    def run_at(rate: float):
        if fraction > 0:
            traffic = dict(traffic="hotspot",
                           traffic_kwargs={"hotspot": HOTSPOT_HOST,
                                           "fraction": fraction})
        else:
            traffic = dict(traffic="uniform")
        cfg = SimConfig(topology="torus", routing=routing, policy=policy,
                        injection_rate=rate, **traffic, **WINDOW)
        return run_simulation(cfg)
    return find_saturation(run_at, start_rate=0.006,
                           refine_steps=2).throughput


def main() -> None:
    print(f"=== 8x8 torus, hotspot at host {HOTSPOT_HOST} ===\n")
    rows = []
    for fraction in (0.0, 0.05, 0.10):
        row = {"fraction": fraction}
        for routing, policy, label in [("updown", "sp", "UP/DOWN"),
                                       ("itb", "sp", "ITB-SP"),
                                       ("itb", "rr", "ITB-RR")]:
            row[label] = saturation(routing, policy, fraction)
        rows.append(row)
        print(f"hotspot {fraction:4.0%}:  "
              + "  ".join(f"{lab} {row[lab]:.4f}"
                          for lab in ("UP/DOWN", "ITB-SP", "ITB-RR"))
              + f"   (ITB-RR gain x{row['ITB-RR'] / row['UP/DOWN']:.2f})")
    print("\npaper Table 1 averages: 5% -> 0.0125/0.0267/0.0274,"
          " 10% -> 0.0123/0.0173/0.0183")
    print("UP/DOWN barely notices the hotspot (its root is the bigger"
          " hotspot); ITB gains shrink but stay >1.4x at 10%.\n")

    # utilisation maps at UP/DOWN's 10%-hotspot saturation point
    rate = rows[2]["UP/DOWN"]
    for routing, policy, label in [("updown", "sp", "UP/DOWN"),
                                   ("itb", "rr", "ITB-RR")]:
        cfg = SimConfig(topology="torus", routing=routing, policy=policy,
                        traffic="hotspot",
                        traffic_kwargs={"hotspot": HOTSPOT_HOST,
                                        "fraction": 0.10},
                        injection_rate=rate, **WINDOW)
        summary = run_simulation(cfg, collect_links=True)
        res = LinkMapResult("fig11", f"10% hotspot @ {rate:.4f}",
                            label, rate, summary.link_utilization, summary)
        print(render_link_map(res, grid=(8, 8)))
        print()
    print("Note the UP/DOWN heat at the top-left (root) corner; ITB-RR's"
          " heat sits around the hotspot switch instead.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Path-selection policy shoot-out with statistical rigour.

Compares the paper's SP and RR policies with the future-work *adaptive*
policy (per-pair latency EWMA, epsilon-greedy) on the 8x8 torus:

1. A/B comparisons over independent seeds with 95 % t-intervals
   (`repro.experiments.compare`), so "slightly lower latency" is a
   statistical statement rather than single-run noise;
2. an ASCII latency/traffic plot of all three curves;
3. a traced packet showing the in-transit buffer mechanism hop by hop.

Run:  python examples/policy_comparison.py        (~1 minute)
"""

from repro import SimConfig
from repro.experiments.compare import compare_configs
from repro.experiments.plot import render_curves
from repro.experiments.sweep import sweep_rates
from repro.units import ns

WINDOW = dict(topology="torus", routing="itb", traffic="uniform",
              warmup_ps=ns(50_000), measure_ps=ns(200_000))


def ab_tests() -> None:
    print("=== A/B comparisons (3 seeds each, 95% t-intervals) ===\n")
    rate = 0.025  # between the UP/DOWN knee and the ITB knees
    sp = SimConfig(policy="sp", injection_rate=rate, **WINDOW)
    rr = SimConfig(policy="rr", injection_rate=rate, **WINDOW)
    ad = SimConfig(policy="adaptive", injection_rate=rate, **WINDOW)
    print(compare_configs(sp, rr, seeds=(1, 2, 3)).render())
    print()
    print(compare_configs(rr, ad, seeds=(1, 2, 3)).render())
    print()


def curves() -> None:
    print("=== latency vs accepted traffic ===\n")
    rates = [0.01, 0.02, 0.026, 0.030, 0.034]
    series = []
    for policy in ("sp", "rr", "adaptive"):
        base = SimConfig(policy=policy, injection_rate=rates[0], **WINDOW)
        series.append(sweep_rates(base, rates))
    print(render_curves(series, title="8x8 torus, uniform, ITB policies"))
    print()
    for s in series:
        print(f"  {s.label:13s} knee throughput {s.throughput():.4f} "
              f"flits/ns/switch")
    print()


def traced_packet() -> None:
    print("=== one in-transit packet, hop by hop ===\n")
    from repro.experiments.runner import get_graph, get_tables
    from repro.routing.policies import SinglePathPolicy
    from repro.sim import PacketTracer, Simulator, WormholeNetwork, \
        format_trace
    from repro.config import PAPER_PARAMS

    g = get_graph("torus", {})
    tables = get_tables(g, ("torus", ()), "itb")
    sim = Simulator()
    net = WormholeNetwork(sim, g, tables, SinglePathPolicy(), PAPER_PARAMS)
    net.tracer = PacketTracer()
    # find a pair whose route needs an in-transit host
    pkt = None
    for (src, dst), alts in tables.routes.items():
        if alts[0].num_itbs >= 1:
            pkt = net.send(g.hosts_at(src)[0], g.hosts_at(dst)[0])
            break
    assert pkt is not None
    sim.run_until_idle()
    print(f"route: switches {pkt.route.switch_path}, "
          f"in-transit hosts {pkt.route.itb_hosts}")
    print(format_trace(net.tracer, pkt.pid))
    print("\nNote the eject/reinject pair: the packet leaves the network"
          "\nentirely at the in-transit host (paying 275 + 200 ns) and"
          "\ncontinues on a fresh up*/down* leg -- that is the whole trick.")


def main() -> None:
    ab_tests()
    curves()
    traced_packet()


if __name__ == "__main__":
    main()

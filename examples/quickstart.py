#!/usr/bin/env python
"""Quickstart: UP/DOWN vs in-transit buffer routing on the paper's torus.

Runs the paper's headline comparison at a single offered load on the
8x8 / 512-host 2-D torus with uniform traffic, using the Myrinet timing
constants of the paper, and prints the routing-table statistics the
paper quotes in Section 4.7.1.

Run:  python examples/quickstart.py
"""

from repro import SimConfig, run_simulation
from repro.experiments.runner import get_graph, get_tables
from repro.routing import route_statistics
from repro.units import ns


def main() -> None:
    print("=== Routing-table statistics (8x8 torus, 512 hosts) ===")
    g = get_graph("torus", {})
    for scheme in ("updown", "itb"):
        tables = get_tables(g, ("torus", ()), scheme)
        st = route_statistics(g, tables)
        print(f"{scheme:7s}: minimal paths {st.fraction_minimal:6.1%}  "
              f"avg distance {st.avg_distance_sp:.2f} links  "
              f"ITBs/msg (SP) {st.avg_itbs_sp:.2f}  (RR) {st.avg_itbs_rr:.2f}")
    print("paper  : up*/down* 80% minimal / 4.57 links;"
          " ITB 100% / 4.06 links; 0.43 / 0.54 ITBs per message\n")

    # offered load just above UP/DOWN's saturation point (0.015)
    rate = 0.02
    print(f"=== Uniform traffic at {rate} flits/ns/switch ===")
    for routing, policy in [("updown", "sp"), ("itb", "sp"), ("itb", "rr")]:
        cfg = SimConfig(topology="torus", routing=routing, policy=policy,
                        traffic="uniform", injection_rate=rate,
                        warmup_ps=ns(80_000), measure_ps=ns(300_000))
        summary = run_simulation(cfg)
        print(summary.oneline())
    print("\nUP/DOWN saturates (accepted < offered) while both ITB"
          " configurations still deliver the full load -- the paper's"
          " headline result.")


if __name__ == "__main__":
    main()
